package heavytail

import (
	"fmt"
	"math"
	"math/rand"

	"fullweb/internal/dist"
	"fullweb/internal/stats"
)

// CurvatureConfig configures Downey's Monte-Carlo curvature test.
type CurvatureConfig struct {
	// TailFraction is the upper fraction of the sample whose LLCD
	// curvature is examined.
	TailFraction float64
	// Replications is the number of Monte-Carlo samples drawn from each
	// fitted model.
	Replications int
	// Seed drives the Monte-Carlo sampling; the paper observes (and our
	// tests reproduce) that the p-value is somewhat sensitive to it.
	Seed int64
	// AlphaOverride, when positive, forces the Pareto shape used for
	// simulation instead of the MLE fit — the paper reports that
	// different estimates of alpha lead to different p-values, and this
	// knob exposes that sensitivity.
	AlphaOverride float64
}

// DefaultCurvatureConfig returns the configuration used in the
// reproduction: 10% tail, 200 replications.
func DefaultCurvatureConfig() CurvatureConfig {
	return CurvatureConfig{TailFraction: 0.1, Replications: 200, Seed: 1}
}

// CurvatureResult is the outcome of the curvature test.
type CurvatureResult struct {
	// Observed is the quadratic coefficient of the LLCD tail fit of the
	// data. A Pareto tail is straight (curvature ~ 0); a lognormal tail
	// curves downward (negative).
	Observed float64
	// PPareto is the two-sided Monte-Carlo p-value under the fitted
	// Pareto model; PLognormal under the fitted lognormal model.
	// p > 0.05 means the model cannot be rejected at the 95% level.
	PPareto    float64
	PLognormal float64
	// ParetoFit and LognormalFit are the models used for simulation.
	ParetoFit    dist.Pareto
	LognormalFit dist.Lognormal
}

// RejectPareto reports whether the Pareto model is rejected at 95%.
func (r CurvatureResult) RejectPareto() bool { return r.PPareto < 0.05 }

// RejectLognormal reports whether the lognormal model is rejected at 95%.
func (r CurvatureResult) RejectLognormal() bool { return r.PLognormal < 0.05 }

// llcdCurvature fits y = a + b*x + c*x^2 to the LLCD points of the upper
// tailFraction of the sample and returns c.
func llcdCurvature(x []float64, tailFraction float64) (float64, error) {
	theta, err := stats.Quantile(x, 1-tailFraction)
	if err != nil {
		return 0, fmt.Errorf("heavytail: curvature cutoff: %w", err)
	}
	e, err := stats.NewECDF(x)
	if err != nil {
		return 0, fmt.Errorf("heavytail: curvature ecdf: %w", err)
	}
	logTheta := math.Inf(-1)
	if theta > 0 {
		logTheta = math.Log10(theta)
	}
	var xs, ys []float64
	for _, p := range e.LLCD() {
		if p.LogX > logTheta {
			xs = append(xs, p.LogX)
			ys = append(ys, p.LogCCDF)
		}
	}
	if len(xs) < 8 {
		return 0, fmt.Errorf("%w: %d tail LLCD points for curvature", ErrTooFewTail, len(xs))
	}
	// Normalize both axes to [0, 1] so the curvature is a pure shape
	// statistic, comparable across samples whose tails span different
	// numbers of decades (a straight line has zero curvature at any
	// scale; without normalization a shallow-alpha Pareto tail spreads
	// over so many decades that its quadratic coefficient is artificially
	// tiny).
	normalize(xs)
	normalize(ys)
	_, _, c, err := quadraticFit(xs, ys)
	if err != nil {
		return 0, fmt.Errorf("heavytail: curvature fit: %w", err)
	}
	return c, nil
}

// normalize maps v affinely onto [0, 1] in place; constant slices are
// left untouched (the quadratic fit will reject them).
func normalize(v []float64) {
	lo, hi := v[0], v[0]
	for _, x := range v[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi == lo {
		return
	}
	span := hi - lo
	for i := range v {
		v[i] = (v[i] - lo) / span
	}
}

// quadraticFit solves the least-squares fit y = a + b*x + c*x^2 via the
// 3x3 normal equations.
func quadraticFit(x, y []float64) (a, b, c float64, err error) {
	n := len(x)
	if n < 3 || n != len(y) {
		return 0, 0, 0, fmt.Errorf("%w: quadratic fit on %d points", ErrBadParam, n)
	}
	// Center x for conditioning.
	mx, _ := stats.Mean(x)
	var s [5]float64 // sums of (x-mx)^p, p = 0..4
	var t [3]float64 // sums of y*(x-mx)^p, p = 0..2
	for i := 0; i < n; i++ {
		d := x[i] - mx
		d2 := d * d
		s[0]++
		s[1] += d
		s[2] += d2
		s[3] += d2 * d
		s[4] += d2 * d2
		t[0] += y[i]
		t[1] += y[i] * d
		t[2] += y[i] * d2
	}
	m := [3][4]float64{
		{s[0], s[1], s[2], t[0]},
		{s[1], s[2], s[3], t[1]},
		{s[2], s[3], s[4], t[2]},
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < 3; col++ {
		pivot := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return 0, 0, 0, fmt.Errorf("heavytail: singular quadratic fit (degenerate abscissae)")
		}
		m[col], m[pivot] = m[pivot], m[col]
		for r := 0; r < 3; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for cc := col; cc < 4; cc++ {
				m[r][cc] -= f * m[col][cc]
			}
		}
	}
	aC := m[0][3] / m[0][0]
	bC := m[1][3] / m[1][1]
	cC := m[2][3] / m[2][2]
	// Un-center: y = aC + bC(x-mx) + cC(x-mx)^2.
	c = cC
	b = bC - 2*cC*mx
	a = aC - bC*mx + cC*mx*mx
	return a, b, c, nil
}

// CurvatureTest runs Downey's Monte-Carlo curvature test on the sample:
// the quadratic coefficient of the data's LLCD tail is compared with the
// distribution of the same statistic over samples simulated from a
// fitted Pareto and a fitted lognormal model. The two-sided rank p-value
// answers "could a sample from this model show the observed curvature?".
func CurvatureTest(x []float64, cfg CurvatureConfig) (CurvatureResult, error) {
	if cfg.TailFraction <= 0 || cfg.TailFraction > 1 || math.IsNaN(cfg.TailFraction) {
		return CurvatureResult{}, fmt.Errorf("%w: tail fraction %v", ErrBadParam, cfg.TailFraction)
	}
	if cfg.Replications < 20 {
		return CurvatureResult{}, fmt.Errorf("%w: %d replications (need >= 20)", ErrBadParam, cfg.Replications)
	}
	if len(x) < 100 {
		return CurvatureResult{}, fmt.Errorf("%w: curvature test needs >= 100 observations, got %d", ErrTooFewTail, len(x))
	}
	observed, err := llcdCurvature(x, cfg.TailFraction)
	if err != nil {
		return CurvatureResult{}, err
	}
	pareto, err := dist.FitPareto(x)
	if err != nil {
		return CurvatureResult{}, fmt.Errorf("heavytail: curvature pareto fit: %w", err)
	}
	if cfg.AlphaOverride > 0 {
		pareto.Alpha = cfg.AlphaOverride
	}
	lognormal, err := dist.FitLognormal(x)
	if err != nil {
		return CurvatureResult{}, fmt.Errorf("heavytail: curvature lognormal fit: %w", err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pPareto, err := curvatureMCPValue(rng, pareto, len(x), cfg, observed)
	if err != nil {
		return CurvatureResult{}, fmt.Errorf("heavytail: curvature pareto simulation: %w", err)
	}
	pLognormal, err := curvatureMCPValue(rng, lognormal, len(x), cfg, observed)
	if err != nil {
		return CurvatureResult{}, fmt.Errorf("heavytail: curvature lognormal simulation: %w", err)
	}
	return CurvatureResult{
		Observed:     observed,
		PPareto:      pPareto,
		PLognormal:   pLognormal,
		ParetoFit:    pareto,
		LognormalFit: lognormal,
	}, nil
}

// curvatureMCPValue simulates Replications samples from the model and
// returns the two-sided rank p-value of the observed curvature among the
// simulated curvatures.
func curvatureMCPValue(rng *rand.Rand, model dist.Continuous, n int, cfg CurvatureConfig, observed float64) (float64, error) {
	below, above := 0, 0
	usable := 0
	sim := make([]float64, n)
	for r := 0; r < cfg.Replications; r++ {
		for i := range sim {
			sim[i] = model.Sample(rng)
		}
		c, err := llcdCurvature(sim, cfg.TailFraction)
		if err != nil {
			// Rare degenerate replication (e.g. ties collapse the tail);
			// skip it rather than abort the test.
			continue
		}
		usable++
		if c <= observed {
			below++
		}
		if c >= observed {
			above++
		}
	}
	if usable < cfg.Replications/2 {
		return 0, fmt.Errorf("%w: only %d of %d curvature replications usable", ErrTooFewTail, usable, cfg.Replications)
	}
	lower := float64(below+1) / float64(usable+1)
	upper := float64(above+1) / float64(usable+1)
	p := 2 * math.Min(lower, upper)
	if p > 1 {
		p = 1
	}
	return p, nil
}
