package heavytail

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fullweb/internal/dist"
	"fullweb/internal/stats"
)

func paretoSample(t testing.TB, alpha, xm float64, n int, seed int64) []float64 {
	t.Helper()
	d, err := dist.NewPareto(alpha, xm)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = d.Sample(rng)
	}
	return x
}

func lognormalSample(t testing.TB, mu, sigma float64, n int, seed int64) []float64 {
	t.Helper()
	d, err := dist.NewLognormal(mu, sigma)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = d.Sample(rng)
	}
	return x
}

func TestClassifyAlpha(t *testing.T) {
	cases := map[float64]TailClass{
		2.5: FiniteMeanAndVariance,
		2.0: InfiniteVariance,
		1.5: InfiniteVariance,
		1.0: InfiniteMean,
		0.8: InfiniteMean,
	}
	for a, want := range cases {
		if got := ClassifyAlpha(a); got != want {
			t.Errorf("ClassifyAlpha(%v) = %v, want %v", a, got, want)
		}
	}
}

func TestTailClassString(t *testing.T) {
	for _, c := range []TailClass{FiniteMeanAndVariance, InfiniteVariance, InfiniteMean, TailClass(9)} {
		if c.String() == "" {
			t.Errorf("class %d should stringify", int(c))
		}
	}
}

func TestEstimateLLCDRecoversPareto(t *testing.T) {
	// On exact Pareto data the LLCD slope equals -alpha over the whole
	// support; the paper's Table 2-4 workflow should recover alpha.
	for _, alpha := range []float64{0.9, 1.5, 2.3} {
		x := paretoSample(t, alpha, 1, 50000, int64(alpha*100))
		res, err := EstimateLLCD(x, 0)
		if err != nil {
			t.Fatalf("alpha=%v: %v", alpha, err)
		}
		if math.Abs(res.Alpha-alpha) > 0.1 {
			t.Errorf("alpha=%v: LLCD estimate %v", alpha, res.Alpha)
		}
		if res.R2 < 0.97 {
			t.Errorf("alpha=%v: R2 = %v, want near 1 on exact Pareto", alpha, res.R2)
		}
	}
}

func TestEstimateLLCDWithCutoff(t *testing.T) {
	// Data that is only Pareto above a knee: uniform body below 10, Pareto
	// tail above. With theta at the knee the estimate is clean.
	rng := rand.New(rand.NewSource(5))
	par, _ := dist.NewPareto(1.7, 10)
	x := make([]float64, 40000)
	for i := range x {
		if i%2 == 0 {
			x[i] = rng.Float64() * 10
		} else {
			x[i] = par.Sample(rng)
		}
	}
	res, err := EstimateLLCD(x, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Alpha-1.7) > 0.12 {
		t.Errorf("LLCD alpha above knee = %v, want ~1.7", res.Alpha)
	}
	if res.TailFraction > 0.55 || res.TailFraction < 0.4 {
		t.Errorf("tail fraction %v, want ~0.5", res.TailFraction)
	}
}

func TestEstimateLLCDErrors(t *testing.T) {
	if _, err := EstimateLLCD(nil, 0); err == nil {
		t.Error("empty sample should error")
	}
	if _, err := EstimateLLCD([]float64{1, 2, -3}, 0); !errors.Is(err, ErrSupport) {
		t.Error("negative data should return ErrSupport")
	}
	if _, err := EstimateLLCD([]float64{1, 2, 3}, math.NaN()); !errors.Is(err, ErrBadParam) {
		t.Error("NaN theta should return ErrBadParam")
	}
	x := paretoSample(t, 1.5, 1, 1000, 6)
	if _, err := EstimateLLCD(x, 1e12); !errors.Is(err, ErrTooFewTail) {
		t.Error("theta above max should return ErrTooFewTail")
	}
}

func TestEstimateLLCDAuto(t *testing.T) {
	x := paretoSample(t, 1.4, 2, 30000, 7)
	res, err := EstimateLLCDAuto(x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Alpha-1.4) > 0.15 {
		t.Errorf("auto LLCD alpha = %v, want ~1.4", res.Alpha)
	}
	if res.Class() != InfiniteVariance {
		t.Errorf("class = %v, want infinite variance", res.Class())
	}
}

func TestEstimateLLCDAutoTooSmall(t *testing.T) {
	if _, err := EstimateLLCDAuto([]float64{1, 2, 3, 4, 5}); err == nil {
		t.Error("tiny sample should error")
	}
}

// Property: LLCD alpha is invariant under positive scaling of the data
// (scaling shifts the plot horizontally without changing the slope).
func TestLLCDScaleInvarianceProperty(t *testing.T) {
	base := paretoSample(t, 1.6, 1, 5000, 8)
	f := func(rawScale float64) bool {
		scale := 0.5 + math.Mod(math.Abs(rawScale), 100)
		if math.IsNaN(scale) {
			return true
		}
		scaled := make([]float64, len(base))
		for i, v := range base {
			scaled[i] = v * scale
		}
		a, err1 := EstimateLLCD(base, 0)
		b, err2 := EstimateLLCD(scaled, 0)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(a.Alpha-b.Alpha) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLLCDLognormalShowsHigherAlphaAtExtremeTail(t *testing.T) {
	// A lognormal LLCD steepens in the tail: the fitted "alpha" over the
	// extreme tail exceeds the one over a wider tail. This is the
	// diagnostic the paper discusses (Section 5.2.1).
	x := lognormalSample(t, 0, 2, 200000, 9)
	wide, err := EstimateLLCD(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	q99, err := stats.Quantile(x, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	extreme, err := EstimateLLCD(x, q99)
	if err != nil {
		t.Fatal(err)
	}
	if extreme.Alpha <= wide.Alpha {
		t.Errorf("lognormal tail should steepen: wide %v vs extreme %v", wide.Alpha, extreme.Alpha)
	}
}
