package heavytail

import "fmt"

// ReservoirState is the checkpointable image of a Reservoir. The RNG
// itself is not serialized: math/rand state has no stable encoding.
// Instead the state records the seed and the observation count, and
// RestoreReservoir replays the generator — one Int63n draw per
// post-capacity observation, exactly the sequence Observe consumed —
// to land the RNG on the identical internal state, so the resumed
// sample path is bit-for-bit the uninterrupted one.
type ReservoirState struct {
	Cap   int       `json:"cap"`
	Seed  int64     `json:"seed"`
	Seen  int64     `json:"seen"`
	Items []float64 `json:"items"`
}

// State captures the reservoir for checkpointing.
func (r *Reservoir) State() ReservoirState {
	items := make([]float64, len(r.items))
	copy(items, r.items)
	return ReservoirState{Cap: r.cap, Seed: r.seed, Seen: r.seen, Items: items}
}

// RestoreReservoir rebuilds a reservoir from a checkpointed state,
// replaying the RNG to its exact position. Replay is O(seen) with a
// tiny constant (one Int63n per observation beyond capacity).
func RestoreReservoir(st ReservoirState) (*Reservoir, error) {
	r, err := NewReservoir(st.Cap, st.Seed)
	if err != nil {
		return nil, err
	}
	want := st.Seen
	if want > int64(st.Cap) {
		want = int64(st.Cap)
	}
	if st.Seen < 0 || int64(len(st.Items)) != want {
		return nil, fmt.Errorf("%w: reservoir state holds %d items for %d seen (cap %d)", ErrBadParam, len(st.Items), st.Seen, st.Cap)
	}
	for n := int64(st.Cap) + 1; n <= st.Seen; n++ {
		r.rng.Int63n(n)
	}
	r.seen = st.Seen
	r.items = append(r.items, st.Items...)
	return r, nil
}

// OnlineHillState is the checkpointable image of an OnlineHill.
type OnlineHillState struct {
	Res          ReservoirState `json:"res"`
	TailFraction float64        `json:"tail_fraction"`
	RelTol       float64        `json:"rel_tol"`
	Dropped      int64          `json:"dropped"`
}

// State captures the estimator for checkpointing.
func (h *OnlineHill) State() OnlineHillState {
	return OnlineHillState{
		Res:          h.res.State(),
		TailFraction: h.tailFraction,
		RelTol:       h.relTol,
		Dropped:      h.dropped,
	}
}

// RestoreOnlineHill rebuilds an OnlineHill from a checkpointed state.
func RestoreOnlineHill(st OnlineHillState) (*OnlineHill, error) {
	h, err := NewOnlineHill(st.Res.Cap, st.Res.Seed, st.TailFraction, st.RelTol)
	if err != nil {
		return nil, err
	}
	res, err := RestoreReservoir(st.Res)
	if err != nil {
		return nil, err
	}
	h.res = res
	h.dropped = st.Dropped
	return h, nil
}
