package heavytail

import (
	"errors"
	"math"
	"testing"
)

func TestMomentsRecoversPareto(t *testing.T) {
	for _, alpha := range []float64{1.0, 1.6, 2.4} {
		x := paretoSample(t, alpha, 1, 30000, int64(alpha*500))
		res, err := EstimateMoments(x, 0.14, 0.5)
		if err != nil {
			t.Fatalf("alpha=%v: %v", alpha, err)
		}
		if !res.Stable {
			t.Fatalf("alpha=%v: moments plot did not stabilize", alpha)
		}
		if math.Abs(res.Gamma-1/alpha) > 0.15/alpha+0.05 {
			t.Errorf("alpha=%v: gamma %v, want ~%v", alpha, res.Gamma, 1/alpha)
		}
		if math.Abs(res.Alpha-alpha) > 0.3*alpha {
			t.Errorf("alpha=%v: moments alpha %v", alpha, res.Alpha)
		}
	}
}

func TestMomentsAgreesWithHillOnPareto(t *testing.T) {
	// The third cross-validation: moments vs Hill vs LLCD all close on
	// exact Pareto data.
	x := paretoSample(t, 1.67, 1, 30000, 42)
	mom, err := EstimateMoments(x, DefaultHillTailFraction, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	hill, err := EstimateHill(x, DefaultHillTailFraction, DefaultHillRelTol)
	if err != nil {
		t.Fatal(err)
	}
	llcd, err := EstimateLLCDAuto(x)
	if err != nil {
		t.Fatal(err)
	}
	if !mom.Stable || !hill.Stable {
		t.Fatalf("stability: moments %v hill %v", mom.Stable, hill.Stable)
	}
	if math.Abs(mom.Alpha-hill.Alpha) > 0.4 {
		t.Errorf("moments %v vs hill %v", mom.Alpha, hill.Alpha)
	}
	if math.Abs(mom.Alpha-llcd.Alpha) > 0.5 {
		t.Errorf("moments %v vs llcd %v", mom.Alpha, llcd.Alpha)
	}
}

func TestMomentsLightTailGammaNonPositive(t *testing.T) {
	// On a uniform sample (bounded support, gamma = -1) the estimator
	// must NOT report a heavy tail.
	x := make([]float64, 20000)
	for i := range x {
		x[i] = 1 + float64(i%1000)/1000
	}
	plot, err := MomentsPlot(x, 2000)
	if err != nil {
		t.Fatal(err)
	}
	// At large k the gamma estimates should be clearly below the
	// heavy-tail region (gamma near 0 or negative).
	last := plot[len(plot)-1]
	if last.Gamma > 0.2 {
		t.Errorf("bounded data gamma = %v, expected <= ~0", last.Gamma)
	}
	if !math.IsInf(last.Alpha, 1) && last.Alpha < 5 {
		t.Errorf("bounded data alpha = %v looks heavy", last.Alpha)
	}
}

func TestMomentsErrors(t *testing.T) {
	if _, err := MomentsPlot([]float64{1, 2}, 2); !errors.Is(err, ErrTooFewTail) {
		t.Error("tiny sample should return ErrTooFewTail")
	}
	if _, err := MomentsPlot([]float64{1, 2, 3}, 1); !errors.Is(err, ErrBadParam) {
		t.Error("kMax < 2 should return ErrBadParam")
	}
	if _, err := MomentsPlot([]float64{1, -2, 3}, 2); !errors.Is(err, ErrSupport) {
		t.Error("negative data should return ErrSupport")
	}
	x := paretoSample(t, 1.5, 1, 1000, 7)
	if _, err := EstimateMoments(x, 0, 0.3); !errors.Is(err, ErrBadParam) {
		t.Error("zero tail fraction should return ErrBadParam")
	}
	if _, err := EstimateMoments(x, 0.14, 0); !errors.Is(err, ErrBadParam) {
		t.Error("zero tolerance should return ErrBadParam")
	}
	if _, err := EstimateMoments(x[:30], 0.14, 0.3); !errors.Is(err, ErrTooFewTail) {
		t.Error("too-small sample should return ErrTooFewTail")
	}
}
