package reliability

import (
	"errors"
	"math"
	"testing"
	"time"

	"fullweb/internal/session"
	"fullweb/internal/weblog"
	"fullweb/internal/workload"
)

func rec(host string, sec int64, status int) weblog.Record {
	return weblog.Record{
		Host: host, Time: time.Unix(sec, 0).UTC(),
		Method: "GET", Path: "/", Proto: "HTTP/1.0",
		Status: status, Bytes: 100,
	}
}

func TestAnalyzeBasics(t *testing.T) {
	records := []weblog.Record{
		rec("a", 0, 200),
		rec("a", 10, 404),
		rec("b", 20, 200),
		rec("b", 30, 200),
		rec("c", 40, 500),
		rec("c", 50, 503),
	}
	rep, err := Analyze(records, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 6 || rep.Errors != 3 {
		t.Fatalf("requests/errors = %d/%d", rep.Requests, rep.Errors)
	}
	if rep.ClientErrors != 1 || rep.ServerErrors != 2 {
		t.Fatalf("client/server errors = %d/%d", rep.ClientErrors, rep.ServerErrors)
	}
	if math.Abs(rep.RequestReliability-0.5) > 1e-12 {
		t.Fatalf("request reliability = %v", rep.RequestReliability)
	}
	// Sessions: a (with error), b (clean), c (two errors) => 1/3 clean.
	if rep.Sessions != 3 || rep.ErrorFreeSessions != 1 {
		t.Fatalf("sessions = %d, error-free = %d", rep.Sessions, rep.ErrorFreeSessions)
	}
	if math.Abs(rep.SessionReliability-1.0/3) > 1e-12 {
		t.Fatalf("session reliability = %v", rep.SessionReliability)
	}
	// Top errors sorted by count (ties by status): 404, 500, 503 all 1,
	// so ordering is by status.
	if len(rep.TopErrors) != 3 || rep.TopErrors[0].Status != 404 {
		t.Fatalf("top errors = %+v", rep.TopErrors)
	}
}

func TestAnalyzeTopErrorOrdering(t *testing.T) {
	records := []weblog.Record{
		rec("a", 0, 404), rec("a", 1, 404), rec("a", 2, 500),
	}
	rep, err := Analyze(records, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TopErrors[0].Status != 404 || rep.TopErrors[0].Count != 2 {
		t.Fatalf("top errors = %+v", rep.TopErrors)
	}
}

func TestAnalyzeEmptyAndPrecomputedSessions(t *testing.T) {
	if _, err := Analyze(nil, nil); !errors.Is(err, ErrNoData) {
		t.Error("empty records should return ErrNoData")
	}
	records := []weblog.Record{rec("a", 0, 200), rec("a", 5, 200)}
	sessions, err := session.Sessionize(records, session.DefaultThreshold)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(records, sessions)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != 1 || rep.SessionReliability != 1 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestAnalyzeHourlySeries(t *testing.T) {
	var records []weblog.Record
	// Errors only in hour 0 and hour 2.
	records = append(records, rec("a", 0, 500), rec("a", 10, 500))
	records = append(records, rec("b", 3700, 200))
	records = append(records, rec("c", 7300, 404))
	rep, err := Analyze(records, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ErrorsPerHour) != 3 {
		t.Fatalf("hours = %d", len(rep.ErrorsPerHour))
	}
	if rep.ErrorsPerHour[0] != 2 || rep.ErrorsPerHour[1] != 0 || rep.ErrorsPerHour[2] != 1 {
		t.Fatalf("hourly = %v", rep.ErrorsPerHour)
	}
	if rep.ErrorDispersion <= 0 {
		t.Fatalf("dispersion = %v", rep.ErrorDispersion)
	}
}

func TestAnalyzeSyntheticTrace(t *testing.T) {
	// The workload generator plants ~4% errors (1% 5xx, 3% 404); the
	// report should land near those rates.
	trace, err := workload.Generate(workload.NASAPub2(), workload.Config{Scale: 1, Seed: 8, Days: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(trace.Records, nil)
	if err != nil {
		t.Fatal(err)
	}
	errRate := 1 - rep.RequestReliability
	if errRate < 0.02 || errRate > 0.07 {
		t.Errorf("error rate %v, expected ~0.04", errRate)
	}
	if rep.ServerErrors == 0 || rep.ClientErrors == 0 {
		t.Error("both error classes should appear")
	}
	if rep.SessionReliability <= 0 || rep.SessionReliability >= 1 {
		t.Errorf("session reliability %v should be strictly inside (0,1)", rep.SessionReliability)
	}
	// With ~10 requests per session at 4% error rate, a substantial
	// fraction of sessions sees at least one error.
	if rep.SessionReliability > 0.95 {
		t.Errorf("session reliability %v implausibly high", rep.SessionReliability)
	}
}
