// Package reliability implements the error and reliability analysis
// stage of the paper's pipeline (Figure 1). The paper's companion
// studies ([11], [12]) characterize Web server reliability through the
// request error rate and the session error rate; this package computes
// both, classifies errors by status class, and examines the temporal
// structure of errors (bursts of failures matter more to dependability
// than their average rate).
package reliability

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"fullweb/internal/session"
	"fullweb/internal/stats"
	"fullweb/internal/weblog"
)

// ErrNoData is returned when there is nothing to analyze.
var ErrNoData = errors.New("reliability: no data")

// StatusCount pairs an HTTP status code with its occurrence count.
type StatusCount struct {
	Status int
	Count  int
}

// Report is the reliability characterization of one log.
type Report struct {
	// Requests and Errors count all records and the 4xx/5xx subset.
	Requests int
	Errors   int
	// ClientErrors (4xx) and ServerErrors (5xx).
	ClientErrors int
	ServerErrors int
	// TopErrors lists the most frequent error statuses, descending.
	TopErrors []StatusCount
	// RequestReliability is 1 - Errors/Requests, the probability a
	// request succeeds.
	RequestReliability float64
	// Sessions and ErrorFreeSessions count all sessions and those that
	// completed without a single failed request; SessionReliability is
	// their ratio — the session-level dependability measure of the
	// paper's companion studies.
	Sessions           int
	ErrorFreeSessions  int
	SessionReliability float64
	// ErrorsPerHour is the hourly error counting series and
	// ErrorDispersion its variance-to-mean ratio: values well above 1
	// mean failures arrive in bursts.
	ErrorsPerHour   []float64
	ErrorDispersion float64
}

// Analyze computes the reliability report from a log and its
// sessionization. sessions may be nil, in which case the records are
// sessionized with the default threshold.
func Analyze(records []weblog.Record, sessions []session.Session) (Report, error) {
	if len(records) == 0 {
		return Report{}, ErrNoData
	}
	if sessions == nil {
		var err error
		sessions, err = session.Sessionize(records, session.DefaultThreshold)
		if err != nil {
			return Report{}, fmt.Errorf("reliability: sessionizing: %w", err)
		}
	}
	rep := Report{Requests: len(records), Sessions: len(sessions)}
	statusCounts := make(map[int]int)
	var first, last time.Time
	for i, r := range records {
		if i == 0 || r.Time.Before(first) {
			first = r.Time
		}
		if i == 0 || r.Time.After(last) {
			last = r.Time
		}
		if !r.IsError() {
			continue
		}
		rep.Errors++
		statusCounts[r.Status]++
		if r.Status < 500 {
			rep.ClientErrors++
		} else {
			rep.ServerErrors++
		}
	}
	rep.RequestReliability = 1 - float64(rep.Errors)/float64(rep.Requests)
	for status, count := range statusCounts {
		rep.TopErrors = append(rep.TopErrors, StatusCount{Status: status, Count: count})
	}
	sort.Slice(rep.TopErrors, func(i, j int) bool {
		if rep.TopErrors[i].Count != rep.TopErrors[j].Count {
			return rep.TopErrors[i].Count > rep.TopErrors[j].Count
		}
		return rep.TopErrors[i].Status < rep.TopErrors[j].Status
	})
	for _, s := range sessions {
		if s.Errors == 0 {
			rep.ErrorFreeSessions++
		}
	}
	if rep.Sessions > 0 {
		rep.SessionReliability = float64(rep.ErrorFreeSessions) / float64(rep.Sessions)
	}
	// Hourly error series.
	hours := int(last.Sub(first)/time.Hour) + 1
	rep.ErrorsPerHour = make([]float64, hours)
	for _, r := range records {
		if r.IsError() {
			rep.ErrorsPerHour[int(r.Time.Sub(first)/time.Hour)]++
		}
	}
	if len(rep.ErrorsPerHour) >= 2 {
		m, errMean := stats.Mean(rep.ErrorsPerHour)
		v, errVar := stats.Variance(rep.ErrorsPerHour)
		if errMean == nil && errVar == nil && m > 0 {
			rep.ErrorDispersion = v / m
		}
	}
	return rep, nil
}
