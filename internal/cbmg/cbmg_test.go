package cbmg

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"fullweb/internal/heavytail"
	"fullweb/internal/stats"
)

// twoState returns a simple browse/buy graph.
func twoState() *Graph {
	return &Graph{
		States: []string{"browse", "buy"},
		Entry:  []float64{0.9, 0.1},
		Transition: [][]float64{
			{0.6, 0.1}, // browse -> browse/buy
			{0.3, 0.0}, // buy -> browse
		},
		ExitProb: []float64{0.3, 0.7},
	}
}

func TestValidate(t *testing.T) {
	g := twoState()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := twoState()
	bad.ExitProb[0] = 0
	bad.Transition[0][0] = 0.9
	if err := bad.Validate(); !errors.Is(err, ErrBadModel) {
		t.Error("zero exit probability should be invalid")
	}
	bad = twoState()
	bad.Entry = []float64{0.5, 0.4}
	if err := bad.Validate(); !errors.Is(err, ErrBadModel) {
		t.Error("non-stochastic entry should be invalid")
	}
	bad = twoState()
	bad.Transition[0][1] = 0.6
	if err := bad.Validate(); !errors.Is(err, ErrBadModel) {
		t.Error("row sum > 1 should be invalid")
	}
	empty := &Graph{}
	if err := empty.Validate(); !errors.Is(err, ErrBadModel) {
		t.Error("empty graph should be invalid")
	}
}

func TestExpectedVisitsClosedForm(t *testing.T) {
	// Single state with exit probability q: visits are geometric with
	// mean 1/q.
	g := &Graph{
		States:     []string{"page"},
		Entry:      []float64{1},
		Transition: [][]float64{{0.75}},
		ExitProb:   []float64{0.25},
	}
	v, err := g.ExpectedVisits()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v[0]-4) > 1e-9 {
		t.Fatalf("visits = %v, want 4", v[0])
	}
	mean, err := g.MeanSessionLength()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-4) > 1e-9 {
		t.Fatalf("mean length = %v", mean)
	}
}

func TestGenerateMatchesExpectedVisits(t *testing.T) {
	g := twoState()
	want, err := g.MeanSessionLength()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	const sessions = 20000
	total := 0
	for s := 0; s < sessions; s++ {
		path, err := g.GenerateSession(rng)
		if err != nil {
			t.Fatal(err)
		}
		if len(path) == 0 {
			t.Fatal("empty session generated")
		}
		total += len(path)
	}
	got := float64(total) / sessions
	if math.Abs(got-want) > 0.05*want {
		t.Fatalf("simulated mean length %v vs analytic %v", got, want)
	}
}

func TestEstimateRecoversGenerator(t *testing.T) {
	g := twoState()
	rng := rand.New(rand.NewSource(2))
	paths := make([][]int, 30000)
	for i := range paths {
		p, err := g.GenerateSession(rng)
		if err != nil {
			t.Fatal(err)
		}
		paths[i] = p
	}
	fitted, err := Estimate(paths, g.States)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fitted.Entry[0]-0.9) > 0.02 {
		t.Errorf("entry[browse] = %v", fitted.Entry[0])
	}
	if math.Abs(fitted.Transition[0][0]-0.6) > 0.02 {
		t.Errorf("browse->browse = %v", fitted.Transition[0][0])
	}
	if math.Abs(fitted.ExitProb[1]-0.7) > 0.02 {
		t.Errorf("exit[buy] = %v", fitted.ExitProb[1])
	}
}

func TestEstimateErrors(t *testing.T) {
	if _, err := Estimate(nil, []string{"a"}); !errors.Is(err, ErrNoSessions) {
		t.Error("no sessions should return ErrNoSessions")
	}
	if _, err := Estimate([][]int{{0}}, nil); !errors.Is(err, ErrBadModel) {
		t.Error("no states should return ErrBadModel")
	}
	if _, err := Estimate([][]int{{5}}, []string{"a"}); !errors.Is(err, ErrBadModel) {
		t.Error("out-of-range state should return ErrBadModel")
	}
}

// TestCBMGCannotReproduceHeavyTails is the paper's criticism made
// concrete: a first-order CBMG generates geometric(-mixture) session
// lengths whose tail decays exponentially, so the Pareto tails of
// Table 3 are impossible — and mean-based reporting (as in [19], [20])
// hides exactly that difference.
func TestCBMGCannotReproduceHeavyTails(t *testing.T) {
	g := twoState()
	rng := rand.New(rand.NewSource(3))
	lengths := make([]float64, 30000)
	for i := range lengths {
		p, err := g.GenerateSession(rng)
		if err != nil {
			t.Fatal(err)
		}
		lengths[i] = float64(len(p))
	}
	// The LLCD "alpha" fitted to a geometric tail keeps growing as the
	// cutoff moves out (no hyperbolic regime). Compare a moderate and an
	// extreme cutoff.
	q50, err := stats.Quantile(lengths, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	q99, err := stats.Quantile(lengths, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if q99 <= q50 {
		t.Skip("degenerate quantiles")
	}
	mid, err := heavytail.EstimateLLCD(lengths, q50)
	if err != nil {
		t.Fatal(err)
	}
	extreme, err := heavytail.EstimateLLCD(lengths, q99)
	if err != nil {
		t.Fatal(err)
	}
	if extreme.Alpha <= mid.Alpha {
		t.Errorf("geometric tail should steepen: mid %v vs extreme %v", mid.Alpha, extreme.Alpha)
	}
	if mid.Alpha < 2 {
		t.Errorf("CBMG session lengths look heavy-tailed (alpha=%v); they must not", mid.Alpha)
	}
}
