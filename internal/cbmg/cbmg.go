// Package cbmg implements the Customer Behavior Model Graph of Menascé
// et al., the session representation used by the e-commerce workload
// studies the paper discusses ([19], [20]): a first-order Markov chain
// over page states with an entry distribution and an exit state. The
// paper's criticism — that reporting *average* session length is
// meaningless when the distribution has huge variance — can be
// demonstrated directly against this model (see the tests): a CBMG's
// geometric-tailed session lengths cannot reproduce the heavy tails of
// Table 3.
package cbmg

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

var (
	// ErrBadModel is returned for structurally invalid graphs.
	ErrBadModel = errors.New("cbmg: invalid model")
	// ErrNoSessions is returned when estimation gets no input.
	ErrNoSessions = errors.New("cbmg: no sessions")
)

// Exit is the implicit absorbing state index used in transition rows.
const Exit = -1

// Graph is a Customer Behavior Model Graph: states 0..N-1 plus the
// absorbing Exit state.
type Graph struct {
	// States names the pages/functions.
	States []string
	// Entry[i] is the probability a session starts in state i.
	Entry []float64
	// Transition[i][j] is the probability of moving from state i to
	// state j; ExitProb[i] the probability of leaving the site from i.
	// Each row i satisfies sum_j Transition[i][j] + ExitProb[i] = 1.
	Transition [][]float64
	ExitProb   []float64
}

// Validate checks stochasticity of the entry vector and every row.
func (g *Graph) Validate() error {
	n := len(g.States)
	if n == 0 {
		return fmt.Errorf("%w: no states", ErrBadModel)
	}
	if len(g.Entry) != n || len(g.Transition) != n || len(g.ExitProb) != n {
		return fmt.Errorf("%w: dimension mismatch", ErrBadModel)
	}
	if err := stochastic(g.Entry, "entry"); err != nil {
		return err
	}
	for i, row := range g.Transition {
		if len(row) != n {
			return fmt.Errorf("%w: row %d has %d columns", ErrBadModel, i, len(row))
		}
		total := g.ExitProb[i]
		if g.ExitProb[i] < -1e-9 {
			return fmt.Errorf("%w: negative exit probability at %d", ErrBadModel, i)
		}
		for j, p := range row {
			if p < -1e-9 {
				return fmt.Errorf("%w: negative transition %d->%d", ErrBadModel, i, j)
			}
			total += p
		}
		if math.Abs(total-1) > 1e-6 {
			return fmt.Errorf("%w: row %d sums to %v", ErrBadModel, i, total)
		}
		if g.ExitProb[i] <= 0 {
			// A state with no exit path can trap sessions forever if the
			// reachable component has no exit at all; requiring positive
			// exit everywhere keeps expected session length finite.
			return fmt.Errorf("%w: state %d has zero exit probability", ErrBadModel, i)
		}
	}
	return nil
}

func stochastic(p []float64, what string) error {
	total := 0.0
	for i, v := range p {
		if v < -1e-9 {
			return fmt.Errorf("%w: negative %s probability at %d", ErrBadModel, what, i)
		}
		total += v
	}
	if math.Abs(total-1) > 1e-6 {
		return fmt.Errorf("%w: %s sums to %v", ErrBadModel, what, total)
	}
	return nil
}

// ExpectedVisits returns the expected number of visits to each state per
// session: v = e (I - P)^{-1}, solved by fixed-point iteration (the
// spectral radius of P is < 1 because every state exits with positive
// probability).
func (g *Graph) ExpectedVisits() ([]float64, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	n := len(g.States)
	v := make([]float64, n)
	copy(v, g.Entry)
	// Iterate v_{k+1} = e + v_k P until convergence.
	for iter := 0; iter < 100000; iter++ {
		next := make([]float64, n)
		copy(next, g.Entry)
		for i := 0; i < n; i++ {
			if v[i] == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				next[j] += v[i] * g.Transition[i][j]
			}
		}
		delta := 0.0
		for i := range next {
			delta += math.Abs(next[i] - v[i])
		}
		v = next
		if delta < 1e-12 {
			return v, nil
		}
	}
	return nil, fmt.Errorf("%w: expected-visits iteration did not converge", ErrBadModel)
}

// MeanSessionLength returns the expected number of requests per session
// implied by the graph — the metric the paper warns against when the
// true distribution has large variance.
func (g *Graph) MeanSessionLength() (float64, error) {
	v, err := g.ExpectedVisits()
	if err != nil {
		return 0, err
	}
	total := 0.0
	for _, x := range v {
		total += x
	}
	return total, nil
}

// GenerateSession samples one session's state path.
func (g *Graph) GenerateSession(rng *rand.Rand) ([]int, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	state := sample(rng, g.Entry)
	path := []int{state}
	for {
		r := rng.Float64()
		if r < g.ExitProb[state] {
			return path, nil
		}
		r -= g.ExitProb[state]
		next := Exit
		for j, p := range g.Transition[state] {
			if r < p {
				next = j
				break
			}
			r -= p
		}
		if next == Exit {
			// Rounding residue: treat as exit.
			return path, nil
		}
		state = next
		path = append(path, state)
	}
}

func sample(rng *rand.Rand, p []float64) int {
	r := rng.Float64()
	for i, v := range p {
		if r < v {
			return i
		}
		r -= v
	}
	return len(p) - 1
}

// Estimate fits a CBMG from observed sessions, each given as a sequence
// of state indices in [0, numStates). Add-one smoothing keeps every
// observed state exitable.
func Estimate(paths [][]int, states []string) (*Graph, error) {
	n := len(states)
	if n == 0 {
		return nil, fmt.Errorf("%w: no states", ErrBadModel)
	}
	if len(paths) == 0 {
		return nil, ErrNoSessions
	}
	entry := make([]float64, n)
	trans := make([][]float64, n)
	exit := make([]float64, n)
	for i := range trans {
		trans[i] = make([]float64, n)
	}
	for _, path := range paths {
		if len(path) == 0 {
			continue
		}
		for i, s := range path {
			if s < 0 || s >= n {
				return nil, fmt.Errorf("%w: state %d outside [0,%d)", ErrBadModel, s, n)
			}
			if i == 0 {
				entry[s]++
			}
			if i == len(path)-1 {
				exit[s]++
			} else {
				trans[s][path[i+1]]++
			}
		}
	}
	entryTotal := 0.0
	for _, v := range entry {
		entryTotal += v
	}
	if entryTotal == 0 {
		return nil, ErrNoSessions
	}
	for i := range entry {
		entry[i] /= entryTotal
	}
	for i := 0; i < n; i++ {
		// Add-one smoothing on the exit count so ExitProb > 0 always.
		rowTotal := exit[i] + 1
		for j := 0; j < n; j++ {
			rowTotal += trans[i][j]
		}
		for j := 0; j < n; j++ {
			trans[i][j] /= rowTotal
		}
		exit[i] = (exit[i] + 1) / rowTotal
	}
	g := &Graph{States: states, Entry: entry, Transition: trans, ExitProb: exit}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
