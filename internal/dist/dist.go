// Package dist implements the probability distributions used by the
// workload models and statistical tests in this library: exponential,
// Pareto, lognormal, normal, and uniform, plus Poisson event-time
// generation. Each distribution provides its CDF, quantile function,
// moments, random sampling from a caller-supplied source, and maximum
// likelihood fitting where the paper requires it.
//
// All samplers take a *rand.Rand so experiments are reproducible from
// fixed seeds; nothing in this package touches global randomness.
package dist

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"fullweb/internal/spec"
)

var (
	// ErrParam is returned when a distribution is constructed with invalid
	// parameters.
	ErrParam = errors.New("dist: invalid parameter")
	// ErrEmpty is returned when a fit is attempted on no data.
	ErrEmpty = errors.New("dist: empty sample")
	// ErrSupport is returned when a fit is attempted on data outside the
	// distribution's support.
	ErrSupport = errors.New("dist: observation outside support")
)

// Continuous is the interface shared by the continuous distributions in
// this package. Mean and Var return +Inf where the moment does not exist
// (heavy-tailed Pareto cases).
type Continuous interface {
	CDF(x float64) float64
	Quantile(p float64) (float64, error)
	Mean() float64
	Var() float64
	Sample(rng *rand.Rand) float64
}

// Exponential is the exponential distribution with rate Lambda > 0.
type Exponential struct {
	Lambda float64
}

var _ Continuous = Exponential{}

// NewExponential returns an exponential distribution with the given rate.
func NewExponential(lambda float64) (Exponential, error) {
	if lambda <= 0 || math.IsNaN(lambda) || math.IsInf(lambda, 0) {
		return Exponential{}, fmt.Errorf("%w: exponential rate %v", ErrParam, lambda)
	}
	return Exponential{Lambda: lambda}, nil
}

// CDF returns P[X <= x].
func (d Exponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-d.Lambda * x)
}

// Quantile returns the p-quantile for p in [0, 1).
func (d Exponential) Quantile(p float64) (float64, error) {
	if p < 0 || p >= 1 || math.IsNaN(p) {
		return 0, fmt.Errorf("%w: quantile probability %v", ErrParam, p)
	}
	return -math.Log1p(-p) / d.Lambda, nil
}

// Mean returns 1/lambda.
func (d Exponential) Mean() float64 { return 1 / d.Lambda }

// Var returns 1/lambda^2.
func (d Exponential) Var() float64 { return 1 / (d.Lambda * d.Lambda) }

// Sample draws one variate.
func (d Exponential) Sample(rng *rand.Rand) float64 {
	return rng.ExpFloat64() / d.Lambda
}

// FitExponential returns the MLE exponential distribution for the sample
// (rate = 1/mean). All observations must be positive.
func FitExponential(x []float64) (Exponential, error) {
	if len(x) == 0 {
		return Exponential{}, ErrEmpty
	}
	sum := 0.0
	for _, v := range x {
		if v <= 0 || math.IsNaN(v) {
			return Exponential{}, fmt.Errorf("%w: exponential fit needs positive data, got %v", ErrSupport, v)
		}
		sum += v
	}
	return NewExponential(float64(len(x)) / sum)
}

// Pareto is the classical Pareto distribution with shape Alpha > 0 and
// scale (location) Xm > 0:
//
//	P[X <= x] = 1 - (Xm/x)^Alpha, x >= Xm.
//
// It is the canonical heavy-tailed model of the paper: for Alpha <= 2 the
// variance is infinite, for Alpha <= 1 the mean is infinite too.
type Pareto struct {
	Alpha float64
	Xm    float64
}

var _ Continuous = Pareto{}

// NewPareto returns a Pareto distribution with the given shape and scale.
func NewPareto(alpha, xm float64) (Pareto, error) {
	if alpha <= 0 || math.IsNaN(alpha) || math.IsInf(alpha, 0) {
		return Pareto{}, fmt.Errorf("%w: pareto shape %v", ErrParam, alpha)
	}
	if xm <= 0 || math.IsNaN(xm) || math.IsInf(xm, 0) {
		return Pareto{}, fmt.Errorf("%w: pareto scale %v", ErrParam, xm)
	}
	return Pareto{Alpha: alpha, Xm: xm}, nil
}

// CDF returns P[X <= x].
func (d Pareto) CDF(x float64) float64 {
	if x <= d.Xm {
		return 0
	}
	return 1 - math.Pow(d.Xm/x, d.Alpha)
}

// Quantile returns the p-quantile for p in [0, 1).
func (d Pareto) Quantile(p float64) (float64, error) {
	if p < 0 || p >= 1 || math.IsNaN(p) {
		return 0, fmt.Errorf("%w: quantile probability %v", ErrParam, p)
	}
	return d.Xm * math.Pow(1-p, -1/d.Alpha), nil
}

// Mean returns alpha*xm/(alpha-1) for alpha > 1, +Inf otherwise.
func (d Pareto) Mean() float64 {
	if d.Alpha <= 1 {
		return math.Inf(1)
	}
	return d.Alpha * d.Xm / (d.Alpha - 1)
}

// Var returns the variance for alpha > 2, +Inf otherwise.
func (d Pareto) Var() float64 {
	if d.Alpha <= 2 {
		return math.Inf(1)
	}
	a := d.Alpha
	return d.Xm * d.Xm * a / ((a - 1) * (a - 1) * (a - 2))
}

// Sample draws one variate by inversion.
func (d Pareto) Sample(rng *rand.Rand) float64 {
	// 1 - U is uniform on (0, 1]; avoid the U==1 pole.
	u := 1 - rng.Float64()
	return d.Xm * math.Pow(u, -1/d.Alpha)
}

// FitPareto returns the MLE Pareto distribution for the sample:
// xm = min(x), alpha = n / sum(log(x_i/xm)). All observations must be
// positive and not all equal.
func FitPareto(x []float64) (Pareto, error) {
	if len(x) == 0 {
		return Pareto{}, ErrEmpty
	}
	xm := math.Inf(1)
	for _, v := range x {
		if v <= 0 || math.IsNaN(v) {
			return Pareto{}, fmt.Errorf("%w: pareto fit needs positive data, got %v", ErrSupport, v)
		}
		if v < xm {
			xm = v
		}
	}
	sumLog := 0.0
	for _, v := range x {
		sumLog += math.Log(v / xm)
	}
	if sumLog == 0 {
		return Pareto{}, fmt.Errorf("%w: pareto fit on constant data", ErrSupport)
	}
	return NewPareto(float64(len(x))/sumLog, xm)
}

// Lognormal is the lognormal distribution: log X ~ N(Mu, Sigma^2). It is
// the paper's competing non-heavy-tailed model for intra-session
// characteristics.
type Lognormal struct {
	Mu    float64
	Sigma float64
}

var _ Continuous = Lognormal{}

// NewLognormal returns a lognormal distribution with the given log-scale
// parameters.
func NewLognormal(mu, sigma float64) (Lognormal, error) {
	if sigma <= 0 || math.IsNaN(sigma) || math.IsInf(sigma, 0) || math.IsNaN(mu) {
		return Lognormal{}, fmt.Errorf("%w: lognormal mu=%v sigma=%v", ErrParam, mu, sigma)
	}
	return Lognormal{Mu: mu, Sigma: sigma}, nil
}

// CDF returns P[X <= x].
func (d Lognormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return spec.NormalCDF((math.Log(x) - d.Mu) / d.Sigma)
}

// Quantile returns the p-quantile for p in (0, 1).
func (d Lognormal) Quantile(p float64) (float64, error) {
	z, err := spec.NormalQuantile(p)
	if err != nil {
		return 0, fmt.Errorf("dist: lognormal quantile: %w", err)
	}
	return math.Exp(d.Mu + d.Sigma*z), nil
}

// Mean returns exp(mu + sigma^2/2).
func (d Lognormal) Mean() float64 {
	return math.Exp(d.Mu + d.Sigma*d.Sigma/2)
}

// Var returns (exp(sigma^2)-1) * exp(2mu + sigma^2).
func (d Lognormal) Var() float64 {
	s2 := d.Sigma * d.Sigma
	return math.Expm1(s2) * math.Exp(2*d.Mu+s2)
}

// Sample draws one variate.
func (d Lognormal) Sample(rng *rand.Rand) float64 {
	return math.Exp(d.Mu + d.Sigma*rng.NormFloat64())
}

// FitLognormal returns the MLE lognormal distribution for the sample
// (sample mean and population standard deviation of the logs). All
// observations must be positive and not all equal.
func FitLognormal(x []float64) (Lognormal, error) {
	if len(x) == 0 {
		return Lognormal{}, ErrEmpty
	}
	logs := make([]float64, len(x))
	sum := 0.0
	for i, v := range x {
		if v <= 0 || math.IsNaN(v) {
			return Lognormal{}, fmt.Errorf("%w: lognormal fit needs positive data, got %v", ErrSupport, v)
		}
		logs[i] = math.Log(v)
		sum += logs[i]
	}
	mu := sum / float64(len(x))
	ss := 0.0
	for _, lv := range logs {
		d := lv - mu
		ss += d * d
	}
	sigma := math.Sqrt(ss / float64(len(x)))
	if sigma == 0 {
		return Lognormal{}, fmt.Errorf("%w: lognormal fit on constant data", ErrSupport)
	}
	return NewLognormal(mu, sigma)
}

// Normal is the normal distribution with mean Mu and standard deviation
// Sigma > 0.
type Normal struct {
	Mu    float64
	Sigma float64
}

var _ Continuous = Normal{}

// NewNormal returns a normal distribution.
func NewNormal(mu, sigma float64) (Normal, error) {
	if sigma <= 0 || math.IsNaN(sigma) || math.IsInf(sigma, 0) || math.IsNaN(mu) {
		return Normal{}, fmt.Errorf("%w: normal mu=%v sigma=%v", ErrParam, mu, sigma)
	}
	return Normal{Mu: mu, Sigma: sigma}, nil
}

// CDF returns P[X <= x].
func (d Normal) CDF(x float64) float64 {
	return spec.NormalCDF((x - d.Mu) / d.Sigma)
}

// Quantile returns the p-quantile for p in (0, 1).
func (d Normal) Quantile(p float64) (float64, error) {
	z, err := spec.NormalQuantile(p)
	if err != nil {
		return 0, fmt.Errorf("dist: normal quantile: %w", err)
	}
	return d.Mu + d.Sigma*z, nil
}

// Mean returns mu.
func (d Normal) Mean() float64 { return d.Mu }

// Var returns sigma^2.
func (d Normal) Var() float64 { return d.Sigma * d.Sigma }

// Sample draws one variate.
func (d Normal) Sample(rng *rand.Rand) float64 {
	return d.Mu + d.Sigma*rng.NormFloat64()
}

// Uniform is the continuous uniform distribution on [A, B).
type Uniform struct {
	A, B float64
}

var _ Continuous = Uniform{}

// NewUniform returns a uniform distribution on [a, b).
func NewUniform(a, b float64) (Uniform, error) {
	if !(a < b) || math.IsNaN(a) || math.IsNaN(b) {
		return Uniform{}, fmt.Errorf("%w: uniform bounds [%v, %v)", ErrParam, a, b)
	}
	return Uniform{A: a, B: b}, nil
}

// CDF returns P[X <= x].
func (d Uniform) CDF(x float64) float64 {
	switch {
	case x <= d.A:
		return 0
	case x >= d.B:
		return 1
	default:
		return (x - d.A) / (d.B - d.A)
	}
}

// Quantile returns the p-quantile for p in [0, 1].
func (d Uniform) Quantile(p float64) (float64, error) {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return 0, fmt.Errorf("%w: quantile probability %v", ErrParam, p)
	}
	return d.A + p*(d.B-d.A), nil
}

// Mean returns (a+b)/2.
func (d Uniform) Mean() float64 { return (d.A + d.B) / 2 }

// Var returns (b-a)^2/12.
func (d Uniform) Var() float64 { w := d.B - d.A; return w * w / 12 }

// Sample draws one variate.
func (d Uniform) Sample(rng *rand.Rand) float64 {
	return d.A + rng.Float64()*(d.B-d.A)
}
