package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// PoissonProcess generates the event times of a homogeneous Poisson
// process with rate Lambda (events per unit time) over [0, horizon). It is
// the baseline arrival model the paper formally rejects for Web requests.
func PoissonProcess(rng *rand.Rand, lambda, horizon float64) ([]float64, error) {
	if lambda <= 0 || math.IsNaN(lambda) || math.IsInf(lambda, 0) {
		return nil, fmt.Errorf("%w: poisson rate %v", ErrParam, lambda)
	}
	if horizon <= 0 || math.IsNaN(horizon) || math.IsInf(horizon, 0) {
		return nil, fmt.Errorf("%w: poisson horizon %v", ErrParam, horizon)
	}
	times := make([]float64, 0, int(lambda*horizon)+16)
	t := 0.0
	for {
		t += rng.ExpFloat64() / lambda
		if t >= horizon {
			return times, nil
		}
		times = append(times, t)
	}
}

// NonHomogeneousPoissonProcess generates event times of a Poisson process
// with time-varying intensity rate(t) over [0, horizon), by thinning
// (Lewis-Shedler). rateMax must bound rate(t) from above on the horizon.
func NonHomogeneousPoissonProcess(rng *rand.Rand, rate func(t float64) float64, rateMax, horizon float64) ([]float64, error) {
	if rateMax <= 0 || math.IsNaN(rateMax) || math.IsInf(rateMax, 0) {
		return nil, fmt.Errorf("%w: poisson rate bound %v", ErrParam, rateMax)
	}
	if horizon <= 0 || math.IsNaN(horizon) || math.IsInf(horizon, 0) {
		return nil, fmt.Errorf("%w: poisson horizon %v", ErrParam, horizon)
	}
	if rate == nil {
		return nil, fmt.Errorf("%w: nil rate function", ErrParam)
	}
	times := make([]float64, 0, int(rateMax*horizon/2)+16)
	t := 0.0
	for {
		t += rng.ExpFloat64() / rateMax
		if t >= horizon {
			return times, nil
		}
		r := rate(t)
		if r < 0 {
			return nil, fmt.Errorf("%w: negative intensity %v at t=%v", ErrParam, r, t)
		}
		if r > rateMax*(1+1e-9) {
			return nil, fmt.Errorf("%w: intensity %v at t=%v exceeds bound %v", ErrParam, r, t, rateMax)
		}
		if rng.Float64()*rateMax < r {
			times = append(times, t)
		}
	}
}

// PoissonSample draws one Poisson(mean) count. For small means it uses
// Knuth's product method; for large means a normal approximation with
// continuity correction, which is adequate for the binned counting series
// this library builds.
func PoissonSample(rng *rand.Rand, mean float64) (int, error) {
	if mean < 0 || math.IsNaN(mean) || math.IsInf(mean, 0) {
		return 0, fmt.Errorf("%w: poisson mean %v", ErrParam, mean)
	}
	if mean == 0 {
		return 0, nil
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= rng.Float64()
			if p <= l {
				return k, nil
			}
			k++
		}
	}
	k := int(math.Round(mean + math.Sqrt(mean)*rng.NormFloat64()))
	if k < 0 {
		k = 0
	}
	return k, nil
}
