package dist

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestZipfPMF(t *testing.T) {
	z, err := NewZipf(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Weights 1, 1/2, 1/3; total 11/6.
	want := []float64{6.0 / 11, 3.0 / 11, 2.0 / 11}
	for k := 1; k <= 3; k++ {
		if math.Abs(z.PMF(k)-want[k-1]) > 1e-12 {
			t.Errorf("PMF(%d) = %v, want %v", k, z.PMF(k), want[k-1])
		}
	}
	if z.PMF(0) != 0 || z.PMF(4) != 0 {
		t.Error("out-of-range PMF should be 0")
	}
}

func TestZipfValidation(t *testing.T) {
	if _, err := NewZipf(0, 1); !errors.Is(err, ErrParam) {
		t.Error("n=0 should error")
	}
	if _, err := NewZipf(10, 0); !errors.Is(err, ErrParam) {
		t.Error("s=0 should error")
	}
}

func TestZipfSampleFrequencies(t *testing.T) {
	z, err := NewZipf(100, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, 101)
	const n = 200000
	for i := 0; i < n; i++ {
		k := z.Sample(rng)
		if k < 1 || k > 100 {
			t.Fatalf("sample %d out of range", k)
		}
		counts[k]++
	}
	// Empirical frequencies of the head ranks match the PMF within
	// binomial noise.
	for k := 1; k <= 5; k++ {
		got := float64(counts[k]) / n
		want := z.PMF(k)
		se := math.Sqrt(want * (1 - want) / n)
		if math.Abs(got-want) > 6*se {
			t.Errorf("rank %d frequency %v, want %v", k, got, want)
		}
	}
	// Popularity decreasing in rank (head vs tail).
	if counts[1] <= counts[50] || counts[50] <= 0 {
		t.Errorf("rank 1 count %d vs rank 50 count %d", counts[1], counts[50])
	}
}
