package dist

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestPoissonProcessCount(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	const (
		lambda  = 50.0
		horizon = 1000.0
	)
	times, err := PoissonProcess(rng, lambda, horizon)
	if err != nil {
		t.Fatal(err)
	}
	want := lambda * horizon
	got := float64(len(times))
	// Count is Poisson(50000); 5 sigma band.
	if math.Abs(got-want) > 5*math.Sqrt(want) {
		t.Fatalf("event count %v, want ~%v", got, want)
	}
	if !sort.Float64sAreSorted(times) {
		t.Fatal("event times not sorted")
	}
	for _, tm := range times {
		if tm < 0 || tm >= horizon {
			t.Fatalf("event time %v outside [0, %v)", tm, horizon)
		}
	}
}

func TestPoissonProcessInterArrivalsExponential(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	times, err := PoissonProcess(rng, 10, 10000)
	if err != nil {
		t.Fatal(err)
	}
	// Inter-arrival mean should be ~1/10.
	sum := times[0]
	for i := 1; i < len(times); i++ {
		sum += times[i] - times[i-1]
	}
	mean := sum / float64(len(times))
	if math.Abs(mean-0.1) > 0.005 {
		t.Fatalf("mean inter-arrival %v, want ~0.1", mean)
	}
}

func TestPoissonProcessInvalid(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	if _, err := PoissonProcess(rng, -1, 10); !errors.Is(err, ErrParam) {
		t.Error("negative rate should error")
	}
	if _, err := PoissonProcess(rng, 1, 0); !errors.Is(err, ErrParam) {
		t.Error("zero horizon should error")
	}
}

func TestNonHomogeneousPoissonProcess(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	// Sinusoidal intensity with mean 20, amplitude 10.
	rate := func(tm float64) float64 { return 20 + 10*math.Sin(2*math.Pi*tm/100) }
	times, err := NonHomogeneousPoissonProcess(rng, rate, 30, 10000)
	if err != nil {
		t.Fatal(err)
	}
	want := 20.0 * 10000
	got := float64(len(times))
	if math.Abs(got-want) > 6*math.Sqrt(want) {
		t.Fatalf("event count %v, want ~%v", got, want)
	}
	if !sort.Float64sAreSorted(times) {
		t.Fatal("event times not sorted")
	}
	// Events should be denser where the intensity is high: compare the
	// first quarter-cycle (high) with the third (low) of the first period.
	highCount, lowCount := 0, 0
	for _, tm := range times {
		phase := math.Mod(tm, 100)
		switch {
		case phase < 25:
			highCount++
		case phase >= 50 && phase < 75:
			lowCount++
		}
	}
	if highCount <= lowCount {
		t.Fatalf("thinning lost intensity modulation: high %d, low %d", highCount, lowCount)
	}
}

func TestNonHomogeneousPoissonProcessErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	if _, err := NonHomogeneousPoissonProcess(rng, nil, 1, 1); !errors.Is(err, ErrParam) {
		t.Error("nil rate should error")
	}
	if _, err := NonHomogeneousPoissonProcess(rng, func(float64) float64 { return -1 }, 1, 100); !errors.Is(err, ErrParam) {
		t.Error("negative intensity should error")
	}
	if _, err := NonHomogeneousPoissonProcess(rng, func(float64) float64 { return 10 }, 1, 100); !errors.Is(err, ErrParam) {
		t.Error("intensity above bound should error")
	}
}

func TestPoissonSampleMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for _, mean := range []float64{0.5, 3, 20, 100} {
		n := 20000
		sum := 0.0
		for i := 0; i < n; i++ {
			k, err := PoissonSample(rng, mean)
			if err != nil {
				t.Fatal(err)
			}
			sum += float64(k)
		}
		got := sum / float64(n)
		se := math.Sqrt(mean / float64(n))
		if math.Abs(got-mean) > 6*se+0.01 {
			t.Errorf("mean %v: sample mean %v", mean, got)
		}
	}
}

func TestPoissonSampleEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	k, err := PoissonSample(rng, 0)
	if err != nil || k != 0 {
		t.Fatalf("PoissonSample(0) = %d, %v", k, err)
	}
	if _, err := PoissonSample(rng, -1); !errors.Is(err, ErrParam) {
		t.Error("negative mean should error")
	}
	if _, err := PoissonSample(rng, math.NaN()); !errors.Is(err, ErrParam) {
		t.Error("NaN mean should error")
	}
}
