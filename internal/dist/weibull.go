package dist

import (
	"fmt"
	"math"
	"math/rand"

	"fullweb/internal/spec"
)

// Weibull is the Weibull distribution with shape K and scale Lambda:
//
//	P[X <= x] = 1 - exp(-(x/Lambda)^K)
//
// It is the classic "stretched exponential" alternative in traffic
// modeling (Paxson & Floyd fit Weibull bodies to several WAN
// quantities): sub-exponential for K < 1 but NOT heavy-tailed in the
// paper's hyperbolic sense — a useful contrast class for the tail
// estimators.
type Weibull struct {
	K      float64
	Lambda float64
}

var _ Continuous = Weibull{}

// NewWeibull returns a Weibull distribution with the given shape and
// scale.
func NewWeibull(k, lambda float64) (Weibull, error) {
	if k <= 0 || math.IsNaN(k) || math.IsInf(k, 0) {
		return Weibull{}, fmt.Errorf("%w: weibull shape %v", ErrParam, k)
	}
	if lambda <= 0 || math.IsNaN(lambda) || math.IsInf(lambda, 0) {
		return Weibull{}, fmt.Errorf("%w: weibull scale %v", ErrParam, lambda)
	}
	return Weibull{K: k, Lambda: lambda}, nil
}

// CDF returns P[X <= x].
func (d Weibull) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-math.Pow(x/d.Lambda, d.K))
}

// Quantile returns the p-quantile for p in [0, 1).
func (d Weibull) Quantile(p float64) (float64, error) {
	if p < 0 || p >= 1 || math.IsNaN(p) {
		return 0, fmt.Errorf("%w: quantile probability %v", ErrParam, p)
	}
	return d.Lambda * math.Pow(-math.Log1p(-p), 1/d.K), nil
}

// Mean returns lambda * Gamma(1 + 1/k).
func (d Weibull) Mean() float64 {
	return d.Lambda * math.Exp(spec.LnGamma(1+1/d.K))
}

// Var returns lambda^2 * (Gamma(1+2/k) - Gamma(1+1/k)^2).
func (d Weibull) Var() float64 {
	g1 := math.Exp(spec.LnGamma(1 + 1/d.K))
	g2 := math.Exp(spec.LnGamma(1 + 2/d.K))
	return d.Lambda * d.Lambda * (g2 - g1*g1)
}

// Sample draws one variate by inversion.
func (d Weibull) Sample(rng *rand.Rand) float64 {
	u := 1 - rng.Float64() // uniform on (0, 1]
	return d.Lambda * math.Pow(-math.Log(u), 1/d.K)
}

// FitWeibull estimates Weibull parameters by maximum likelihood: the
// shape solves the standard fixed-point condition (here by bisection on
// k in [0.05, 50]), then the scale follows in closed form. All
// observations must be positive.
func FitWeibull(x []float64) (Weibull, error) {
	n := len(x)
	if n == 0 {
		return Weibull{}, ErrEmpty
	}
	logs := make([]float64, n)
	sumLog := 0.0
	for i, v := range x {
		if v <= 0 || math.IsNaN(v) {
			return Weibull{}, fmt.Errorf("%w: weibull fit needs positive data, got %v", ErrSupport, v)
		}
		logs[i] = math.Log(v)
		sumLog += logs[i]
	}
	meanLog := sumLog / float64(n)
	// MLE condition: g(k) = sum(x^k log x)/sum(x^k) - 1/k - meanLog = 0;
	// g is increasing in k.
	g := func(k float64) float64 {
		var sxk, sxkl float64
		for i, v := range x {
			xk := math.Pow(v, k)
			sxk += xk
			sxkl += xk * logs[i]
		}
		return sxkl/sxk - 1/k - meanLog
	}
	lo, hi := 0.05, 50.0
	if g(lo) > 0 || g(hi) < 0 {
		return Weibull{}, fmt.Errorf("%w: weibull shape outside [%v, %v]", ErrSupport, lo, hi)
	}
	for iter := 0; iter < 200; iter++ {
		mid := (lo + hi) / 2
		if g(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	k := (lo + hi) / 2
	sxk := 0.0
	for _, v := range x {
		sxk += math.Pow(v, k)
	}
	lambda := math.Pow(sxk/float64(n), 1/k)
	return NewWeibull(k, lambda)
}
