package dist

import (
	"errors"
	"math"
	"testing"
)

func TestWeibullReducesToExponential(t *testing.T) {
	// K = 1 is exponential with rate 1/lambda.
	w, err := NewWeibull(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := NewExponential(0.5)
	for _, x := range []float64{0.1, 0.5, 1, 3, 10} {
		if math.Abs(w.CDF(x)-e.CDF(x)) > 1e-12 {
			t.Errorf("CDF(%v): weibull %v vs exponential %v", x, w.CDF(x), e.CDF(x))
		}
	}
	if math.Abs(w.Mean()-2) > 1e-9 {
		t.Errorf("mean = %v, want 2", w.Mean())
	}
	if math.Abs(w.Var()-4) > 1e-9 {
		t.Errorf("var = %v, want 4", w.Var())
	}
}

func TestWeibullQuantileInvertsCDF(t *testing.T) {
	w, _ := NewWeibull(0.7, 3)
	for _, p := range []float64{0, 0.1, 0.5, 0.9, 0.999} {
		q, err := w.Quantile(p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(w.CDF(q)-p) > 1e-10 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, w.CDF(q))
		}
	}
	if _, err := w.Quantile(1); !errors.Is(err, ErrParam) {
		t.Error("Quantile(1) should error")
	}
}

func TestWeibullValidation(t *testing.T) {
	for _, bad := range [][2]float64{{0, 1}, {-1, 1}, {1, 0}, {math.NaN(), 1}, {1, math.Inf(1)}} {
		if _, err := NewWeibull(bad[0], bad[1]); !errors.Is(err, ErrParam) {
			t.Errorf("NewWeibull(%v, %v) should error", bad[0], bad[1])
		}
	}
}

func TestFitWeibullRecovers(t *testing.T) {
	for _, k := range []float64{0.6, 1.0, 2.5} {
		d, err := NewWeibull(k, 4)
		if err != nil {
			t.Fatal(err)
		}
		x := sampleN(d, 30000, int64(k*1000))
		fit, err := FitWeibull(x)
		if err != nil {
			t.Fatalf("k=%v: %v", k, err)
		}
		if math.Abs(fit.K-k) > 0.08*k+0.02 {
			t.Errorf("k=%v: fitted shape %v", k, fit.K)
		}
		if math.Abs(fit.Lambda-4) > 0.3 {
			t.Errorf("k=%v: fitted scale %v", k, fit.Lambda)
		}
	}
}

func TestFitWeibullErrors(t *testing.T) {
	if _, err := FitWeibull(nil); !errors.Is(err, ErrEmpty) {
		t.Error("empty fit should return ErrEmpty")
	}
	if _, err := FitWeibull([]float64{1, -1}); !errors.Is(err, ErrSupport) {
		t.Error("negative data should return ErrSupport")
	}
}

func TestWeibullNotHeavyTailed(t *testing.T) {
	// Sanity for the tail-estimator contrast class: the Weibull CCDF
	// decays faster than any power law, so the local LLCD slope steepens
	// with x. Check the analytic slope d log CCDF / d log x = -k*(x/l)^k
	// becomes more negative.
	w, _ := NewWeibull(0.7, 1)
	slope := func(x float64) float64 {
		return -w.K * math.Pow(x/w.Lambda, w.K)
	}
	if !(slope(10) < slope(1) && slope(100) < slope(10)) {
		t.Error("Weibull LLCD slope should steepen with x")
	}
}
