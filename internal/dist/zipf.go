package dist

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Zipf is the finite Zipf distribution over ranks 1..N with exponent S:
// P[rank = k] proportional to k^{-S}. Web document popularity is
// classically Zipf-like (Arlitt & Williamson, the paper's reference
// [2]); the workload generator uses it to pick request paths so that
// per-document request counts have a realistic concentration profile.
type Zipf struct {
	N int
	S float64
	// cdf[k] = P[rank <= k+1]; built once for O(log N) sampling.
	cdf []float64
}

// NewZipf returns a Zipf distribution over n ranks with exponent s > 0.
func NewZipf(n int, s float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: zipf size %d", ErrParam, n)
	}
	if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return nil, fmt.Errorf("%w: zipf exponent %v", ErrParam, s)
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 1; k <= n; k++ {
		sum += math.Pow(float64(k), -s)
		cdf[k-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{N: n, S: s, cdf: cdf}, nil
}

// PMF returns P[rank = k] for k in 1..N.
func (z *Zipf) PMF(k int) float64 {
	if k < 1 || k > z.N {
		return 0
	}
	if k == 1 {
		return z.cdf[0]
	}
	return z.cdf[k-1] - z.cdf[k-2]
}

// Sample draws one rank in 1..N.
func (z *Zipf) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cdf, u) + 1
}
