package dist

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func sampleN(d Continuous, n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = d.Sample(rng)
	}
	return x
}

func TestExponentialBasics(t *testing.T) {
	d, err := NewExponential(2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Mean() != 0.5 || d.Var() != 0.25 {
		t.Fatalf("moments = %v, %v", d.Mean(), d.Var())
	}
	if got := d.CDF(0); got != 0 {
		t.Fatalf("CDF(0) = %v", got)
	}
	want := 1 - math.Exp(-2)
	if got := d.CDF(1); math.Abs(got-want) > 1e-14 {
		t.Fatalf("CDF(1) = %v, want %v", got, want)
	}
	q, err := d.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.CDF(q)-0.5) > 1e-12 {
		t.Fatalf("CDF(Quantile(0.5)) = %v", d.CDF(q))
	}
}

func TestNewExponentialInvalid(t *testing.T) {
	for _, l := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewExponential(l); !errors.Is(err, ErrParam) {
			t.Errorf("NewExponential(%v) error = %v, want ErrParam", l, err)
		}
	}
}

func TestFitExponential(t *testing.T) {
	d, _ := NewExponential(3)
	x := sampleN(d, 50000, 1)
	fit, err := FitExponential(x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Lambda-3) > 0.1 {
		t.Fatalf("fitted lambda = %v, want ~3", fit.Lambda)
	}
	if _, err := FitExponential(nil); err != ErrEmpty {
		t.Error("empty fit should return ErrEmpty")
	}
	if _, err := FitExponential([]float64{1, -2}); !errors.Is(err, ErrSupport) {
		t.Error("negative data should return ErrSupport")
	}
}

func TestParetoBasics(t *testing.T) {
	d, err := NewPareto(2.5, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.CDF(1); got != 0 {
		t.Fatalf("CDF below xm = %v", got)
	}
	if got := d.CDF(3); math.Abs(got-(1-math.Pow(0.5, 2.5))) > 1e-14 {
		t.Fatalf("CDF(3) = %v", got)
	}
	wantMean := 2.5 * 1.5 / 1.5
	if math.Abs(d.Mean()-wantMean) > 1e-14 {
		t.Fatalf("Mean = %v, want %v", d.Mean(), wantMean)
	}
	if math.IsInf(d.Var(), 1) {
		t.Fatal("alpha=2.5 should have finite variance")
	}
}

func TestParetoInfiniteMoments(t *testing.T) {
	heavy, _ := NewPareto(1.5, 1)
	if !math.IsInf(heavy.Var(), 1) {
		t.Error("alpha=1.5 should have infinite variance")
	}
	if math.IsInf(heavy.Mean(), 1) {
		t.Error("alpha=1.5 should have finite mean")
	}
	veryHeavy, _ := NewPareto(0.8, 1)
	if !math.IsInf(veryHeavy.Mean(), 1) {
		t.Error("alpha=0.8 should have infinite mean")
	}
}

func TestParetoQuantileInvertsCDF(t *testing.T) {
	d, _ := NewPareto(1.3, 2)
	for _, p := range []float64{0, 0.1, 0.5, 0.9, 0.999} {
		q, err := d.Quantile(p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(d.CDF(q)-p) > 1e-12 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, d.CDF(q))
		}
	}
	if _, err := d.Quantile(1); !errors.Is(err, ErrParam) {
		t.Error("Quantile(1) should error for Pareto")
	}
}

func TestFitPareto(t *testing.T) {
	d, _ := NewPareto(1.8, 3)
	x := sampleN(d, 50000, 2)
	fit, err := FitPareto(x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-1.8) > 0.05 {
		t.Fatalf("fitted alpha = %v, want ~1.8", fit.Alpha)
	}
	if math.Abs(fit.Xm-3) > 0.01 {
		t.Fatalf("fitted xm = %v, want ~3", fit.Xm)
	}
	if _, err := FitPareto([]float64{2, 2, 2}); !errors.Is(err, ErrSupport) {
		t.Error("constant data should return ErrSupport")
	}
}

func TestLognormalBasics(t *testing.T) {
	d, err := NewLognormal(1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.CDF(0); got != 0 {
		t.Fatalf("CDF(0) = %v", got)
	}
	// Median is exp(mu).
	if math.Abs(d.CDF(math.E)-0.5) > 1e-12 {
		t.Fatalf("CDF(e^mu) = %v, want 0.5", d.CDF(math.E))
	}
	wantMean := math.Exp(1 + 0.125)
	if math.Abs(d.Mean()-wantMean) > 1e-12 {
		t.Fatalf("Mean = %v, want %v", d.Mean(), wantMean)
	}
}

func TestFitLognormal(t *testing.T) {
	d, _ := NewLognormal(2, 1.5)
	x := sampleN(d, 50000, 3)
	fit, err := FitLognormal(x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Mu-2) > 0.05 || math.Abs(fit.Sigma-1.5) > 0.05 {
		t.Fatalf("fitted = %+v, want mu=2 sigma=1.5", fit)
	}
}

func TestNormalBasics(t *testing.T) {
	d, err := NewNormal(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.CDF(5)-0.5) > 1e-14 {
		t.Fatalf("CDF(mu) = %v", d.CDF(5))
	}
	q, err := d.Quantile(0.975)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q-(5+2*1.959963984540054)) > 1e-8 {
		t.Fatalf("Quantile(0.975) = %v", q)
	}
}

func TestUniformBasics(t *testing.T) {
	d, err := NewUniform(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if d.Mean() != 4 || math.Abs(d.Var()-16.0/12) > 1e-14 {
		t.Fatalf("moments = %v, %v", d.Mean(), d.Var())
	}
	if d.CDF(1) != 0 || d.CDF(7) != 1 || d.CDF(4) != 0.5 {
		t.Fatal("uniform CDF wrong")
	}
	if _, err := NewUniform(3, 3); !errors.Is(err, ErrParam) {
		t.Error("degenerate uniform should error")
	}
}

// Property: for every distribution, CDF(Quantile(p)) == p on the interior.
func TestQuantileCDFInverseProperty(t *testing.T) {
	exp, _ := NewExponential(1.7)
	par, _ := NewPareto(1.2, 0.5)
	lgn, _ := NewLognormal(0.3, 2)
	nrm, _ := NewNormal(-1, 3)
	uni, _ := NewUniform(-2, 5)
	dists := []Continuous{exp, par, lgn, nrm, uni}
	f := func(rawP float64, which uint8) bool {
		p := math.Mod(math.Abs(rawP), 1)
		if p <= 1e-9 || p >= 1-1e-9 || math.IsNaN(p) {
			return true
		}
		d := dists[int(which)%len(dists)]
		q, err := d.Quantile(p)
		if err != nil {
			return false
		}
		return math.Abs(d.CDF(q)-p) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: samples always lie in the distribution's support.
func TestSampleSupportProperty(t *testing.T) {
	par, _ := NewPareto(1.1, 2.5)
	exp, _ := NewExponential(0.4)
	lgn, _ := NewLognormal(0, 1)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 20; i++ {
			if v := par.Sample(rng); v < par.Xm {
				return false
			}
			if v := exp.Sample(rng); v < 0 {
				return false
			}
			if v := lgn.Sample(rng); v <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleMeansMatch(t *testing.T) {
	cases := []struct {
		name string
		d    Continuous
		tol  float64
	}{
		{"exponential", mustExp(t, 0.25), 0.1},
		{"pareto-finite-var", mustPar(t, 3.5, 2), 0.1},
		{"lognormal", mustLgn(t, 1, 0.5), 0.1},
		{"normal", mustNrm(t, 7, 2), 0.05},
		{"uniform", mustUni(t, 0, 10), 0.05},
	}
	for _, c := range cases {
		x := sampleN(c.d, 100000, 42)
		sum := 0.0
		for _, v := range x {
			sum += v
		}
		mean := sum / float64(len(x))
		if math.Abs(mean-c.d.Mean()) > c.tol*(1+math.Abs(c.d.Mean())) {
			t.Errorf("%s: sample mean %v vs theoretical %v", c.name, mean, c.d.Mean())
		}
	}
}

func mustExp(t *testing.T, l float64) Exponential {
	t.Helper()
	d, err := NewExponential(l)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func mustPar(t *testing.T, a, xm float64) Pareto {
	t.Helper()
	d, err := NewPareto(a, xm)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func mustLgn(t *testing.T, mu, s float64) Lognormal {
	t.Helper()
	d, err := NewLognormal(mu, s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func mustNrm(t *testing.T, mu, s float64) Normal {
	t.Helper()
	d, err := NewNormal(mu, s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func mustUni(t *testing.T, a, b float64) Uniform {
	t.Helper()
	d, err := NewUniform(a, b)
	if err != nil {
		t.Fatal(err)
	}
	return d
}
