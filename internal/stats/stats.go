// Package stats provides the descriptive and inferential statistics
// primitives shared across the workload-analysis library: moments,
// quantiles, empirical distribution functions, sample autocorrelation,
// least-squares regression, and binomial tail probabilities.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

var (
	// ErrEmpty is returned when a statistic is requested on no data.
	ErrEmpty = errors.New("stats: empty data")
	// ErrTooShort is returned when the data has too few observations for
	// the requested statistic.
	ErrTooShort = errors.New("stats: too few observations")
	// ErrConstant is returned when a statistic is undefined for constant
	// data (for example correlation).
	ErrConstant = errors.New("stats: constant data")
)

// Mean returns the arithmetic mean of x.
func Mean(x []float64) (float64, error) {
	if len(x) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, v := range x {
		sum += v
	}
	return sum / float64(len(x)), nil
}

// Variance returns the unbiased sample variance of x (denominator n-1).
func Variance(x []float64) (float64, error) {
	if len(x) < 2 {
		return 0, ErrTooShort
	}
	m, _ := Mean(x)
	ss := 0.0
	for _, v := range x {
		d := v - m
		ss += d * d
	}
	return ss / float64(len(x)-1), nil
}

// PopulationVariance returns the biased sample variance of x
// (denominator n), the convention used by the aggregated-variance Hurst
// estimator.
func PopulationVariance(x []float64) (float64, error) {
	if len(x) == 0 {
		return 0, ErrEmpty
	}
	m, _ := Mean(x)
	ss := 0.0
	for _, v := range x {
		d := v - m
		ss += d * d
	}
	return ss / float64(len(x)), nil
}

// StdDev returns the unbiased sample standard deviation of x.
func StdDev(x []float64) (float64, error) {
	v, err := Variance(x)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// MinMax returns the smallest and largest values in x.
func MinMax(x []float64) (min, max float64, err error) {
	if len(x) == 0 {
		return 0, 0, ErrEmpty
	}
	min, max = x[0], x[0]
	for _, v := range x[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max, nil
}

// Sum returns the sum of x.
func Sum(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s
}

// Quantile returns the p-quantile of x for p in [0, 1], using linear
// interpolation between order statistics (type 7 in Hyndman-Fan's
// taxonomy, the R default). The input need not be sorted.
func Quantile(x []float64, p float64) (float64, error) {
	if len(x) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		return 0, fmt.Errorf("stats: quantile probability %v outside [0,1]", p)
	}
	sorted := make([]float64, len(x))
	copy(sorted, x)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	h := p * float64(len(sorted)-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= len(sorted) {
		return sorted[len(sorted)-1], nil
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 0.5-quantile of x.
func Median(x []float64) (float64, error) {
	return Quantile(x, 0.5)
}

// Summary holds the descriptive statistics of a sample.
type Summary struct {
	N        int
	Mean     float64
	Variance float64
	StdDev   float64
	Min      float64
	Max      float64
	Median   float64
	Q1       float64
	Q3       float64
	Sum      float64
}

// Summarize computes a Summary of x. It requires at least two
// observations so that the variance is defined.
func Summarize(x []float64) (Summary, error) {
	if len(x) < 2 {
		return Summary{}, ErrTooShort
	}
	m, _ := Mean(x)
	v, _ := Variance(x)
	min, max, _ := MinMax(x)
	med, _ := Median(x)
	q1, _ := Quantile(x, 0.25)
	q3, _ := Quantile(x, 0.75)
	return Summary{
		N:        len(x),
		Mean:     m,
		Variance: v,
		StdDev:   math.Sqrt(v),
		Min:      min,
		Max:      max,
		Median:   med,
		Q1:       q1,
		Q3:       q3,
		Sum:      Sum(x),
	}, nil
}

// Autocorrelation returns the sample autocorrelation function of x at lags
// 0..maxLag inclusive, using the biased estimator conventional in time
// series analysis:
//
//	r(k) = sum_{t=1}^{n-k} (x_t - mean)(x_{t+k} - mean) / sum_t (x_t - mean)^2
//
// This direct implementation is O(n * maxLag); for long series and many
// lags prefer AutocorrelationFFT.
func Autocorrelation(x []float64, maxLag int) ([]float64, error) {
	n := len(x)
	if n < 2 {
		return nil, ErrTooShort
	}
	if maxLag < 0 || maxLag >= n {
		return nil, fmt.Errorf("stats: maxLag %d outside [0, %d)", maxLag, n)
	}
	m, _ := Mean(x)
	centered := make([]float64, n)
	denom := 0.0
	for i, v := range x {
		centered[i] = v - m
		denom += centered[i] * centered[i]
	}
	if denom == 0 {
		return nil, ErrConstant
	}
	acf := make([]float64, maxLag+1)
	for k := 0; k <= maxLag; k++ {
		num := 0.0
		for t := 0; t+k < n; t++ {
			num += centered[t] * centered[t+k]
		}
		acf[k] = num / denom
	}
	return acf, nil
}

// Lag1Autocorrelation returns the sample autocorrelation of x at lag one.
func Lag1Autocorrelation(x []float64) (float64, error) {
	acf, err := Autocorrelation(x, 1)
	if err != nil {
		return 0, err
	}
	return acf[1], nil
}

// LinearFit holds the result of an ordinary least squares fit
// y = Intercept + Slope*x.
type LinearFit struct {
	Slope       float64
	Intercept   float64
	SlopeSE     float64 // standard error of the slope
	InterceptSE float64 // standard error of the intercept
	R2          float64 // coefficient of determination
	ResidualVar float64 // unbiased residual variance (n-2 dof)
	N           int
}

// LinearRegression fits y = a + b*x by ordinary least squares and returns
// the slope, intercept, their standard errors, and R^2. x and y must have
// equal length >= 3 and x must not be constant.
func LinearRegression(x, y []float64) (LinearFit, error) {
	n := len(x)
	if n != len(y) {
		return LinearFit{}, fmt.Errorf("stats: length mismatch %d vs %d", n, len(y))
	}
	if n < 3 {
		return LinearFit{}, ErrTooShort
	}
	mx, _ := Mean(x)
	my, _ := Mean(y)
	sxx, sxy, syy := 0.0, 0.0, 0.0
	for i := 0; i < n; i++ {
		dx := x[i] - mx
		dy := y[i] - my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, ErrConstant
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	ssRes := 0.0
	for i := 0; i < n; i++ {
		r := y[i] - intercept - slope*x[i]
		ssRes += r * r
	}
	resVar := ssRes / float64(n-2)
	r2 := 1.0
	if syy > 0 {
		r2 = 1 - ssRes/syy
	}
	return LinearFit{
		Slope:       slope,
		Intercept:   intercept,
		SlopeSE:     math.Sqrt(resVar / sxx),
		InterceptSE: math.Sqrt(resVar * (1/float64(n) + mx*mx/sxx)),
		R2:          r2,
		ResidualVar: resVar,
		N:           n,
	}, nil
}

// WeightedLinearRegression fits y = a + b*x by weighted least squares with
// the given positive weights (inverse variances). It returns the slope,
// intercept, and the standard error of the slope implied by the weights
// (Var(b) = 1/S_xx in the weighted metric).
func WeightedLinearRegression(x, y, w []float64) (LinearFit, error) {
	n := len(x)
	if n != len(y) || n != len(w) {
		return LinearFit{}, fmt.Errorf("stats: length mismatch %d, %d, %d", n, len(y), len(w))
	}
	if n < 2 {
		return LinearFit{}, ErrTooShort
	}
	var sw, swx, swy float64
	for i := 0; i < n; i++ {
		if w[i] <= 0 || math.IsNaN(w[i]) {
			return LinearFit{}, fmt.Errorf("stats: non-positive weight %v at index %d", w[i], i)
		}
		sw += w[i]
		swx += w[i] * x[i]
		swy += w[i] * y[i]
	}
	mx := swx / sw
	my := swy / sw
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx := x[i] - mx
		dy := y[i] - my
		sxx += w[i] * dx * dx
		sxy += w[i] * dx * dy
		syy += w[i] * dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, ErrConstant
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	ssRes := 0.0
	for i := 0; i < n; i++ {
		r := y[i] - intercept - slope*x[i]
		ssRes += w[i] * r * r
	}
	r2 := 1.0
	if syy > 0 {
		r2 = 1 - ssRes/syy
	}
	return LinearFit{
		Slope:     slope,
		Intercept: intercept,
		// Under w_i = 1/Var(y_i), Var(slope) = 1/sxx exactly.
		SlopeSE:     math.Sqrt(1 / sxx),
		InterceptSE: math.Sqrt(1/sw + mx*mx/sxx),
		R2:          r2,
		N:           n,
	}, nil
}
