package stats

import (
	"fmt"

	"fullweb/internal/fft"
)

// AutocorrelationFFT computes the same biased sample autocorrelation
// function as Autocorrelation but via the Wiener-Khinchin theorem: the
// inverse transform of the power spectrum of the zero-padded, centered
// series. Cost is O(n log n) regardless of maxLag, which matters for the
// week-long second-resolution series analyzed in the paper (n ~ 6*10^5).
func AutocorrelationFFT(x []float64, maxLag int) ([]float64, error) {
	n := len(x)
	if n < 2 {
		return nil, ErrTooShort
	}
	if maxLag < 0 || maxLag >= n {
		return nil, fmt.Errorf("stats: maxLag %d outside [0, %d)", maxLag, n)
	}
	m, _ := Mean(x)
	// Zero-pad to at least 2n to make the circular convolution linear.
	padded := make([]complex128, fft.NextPowerOfTwo(2*n))
	for i, v := range x {
		padded[i] = complex(v-m, 0)
	}
	spec, err := fft.Transform(padded)
	if err != nil {
		return nil, fmt.Errorf("stats: autocorrelation transform: %w", err)
	}
	for i, c := range spec {
		re, im := real(c), imag(c)
		spec[i] = complex(re*re+im*im, 0)
	}
	auto, err := fft.Inverse(spec)
	if err != nil {
		return nil, fmt.Errorf("stats: autocorrelation inverse transform: %w", err)
	}
	denom := real(auto[0])
	if denom == 0 {
		return nil, ErrConstant
	}
	acf := make([]float64, maxLag+1)
	for k := 0; k <= maxLag; k++ {
		acf[k] = real(auto[k]) / denom
	}
	return acf, nil
}
