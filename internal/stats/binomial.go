package stats

import (
	"fmt"
	"math"
)

// BinomialPMF returns P[X = k] for X ~ Binomial(n, p). It is computed in
// log space to remain accurate for large n.
func BinomialPMF(n, k int, p float64) (float64, error) {
	if n < 0 || k < 0 || k > n {
		return 0, fmt.Errorf("stats: binomial pmf with n=%d k=%d", n, k)
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		return 0, fmt.Errorf("stats: binomial probability %v outside [0,1]", p)
	}
	if p == 0 {
		if k == 0 {
			return 1, nil
		}
		return 0, nil
	}
	if p == 1 {
		if k == n {
			return 1, nil
		}
		return 0, nil
	}
	lg := func(x float64) float64 { v, _ := math.Lgamma(x); return v }
	logPMF := lg(float64(n)+1) - lg(float64(k)+1) - lg(float64(n-k)+1) +
		float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p)
	return math.Exp(logPMF), nil
}

// BinomialCDF returns P[X <= k] for X ~ Binomial(n, p).
func BinomialCDF(n, k int, p float64) (float64, error) {
	if k < 0 {
		return 0, nil
	}
	if k >= n {
		return 1, nil
	}
	sum := 0.0
	for i := 0; i <= k; i++ {
		pmf, err := BinomialPMF(n, i, p)
		if err != nil {
			return 0, err
		}
		sum += pmf
	}
	if sum > 1 {
		sum = 1
	}
	return sum, nil
}

// BinomialUpperTail returns P[X >= k] for X ~ Binomial(n, p).
func BinomialUpperTail(n, k int, p float64) (float64, error) {
	if k <= 0 {
		return 1, nil
	}
	cdf, err := BinomialCDF(n, k-1, p)
	if err != nil {
		return 0, err
	}
	return 1 - cdf, nil
}
