package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMultipleRegressionExact(t *testing.T) {
	// y = 2 + 3*x1 - 0.5*x2 exactly.
	rng := rand.New(rand.NewSource(1))
	n := 50
	design := make([][]float64, n)
	y := make([]float64, n)
	for i := range design {
		x1, x2 := rng.NormFloat64(), rng.NormFloat64()
		design[i] = []float64{1, x1, x2}
		y[i] = 2 + 3*x1 - 0.5*x2
	}
	fit, err := MultipleRegression(design, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -0.5}
	for i, w := range want {
		if math.Abs(fit.Coef[i]-w) > 1e-9 {
			t.Errorf("coef[%d] = %v, want %v", i, fit.Coef[i], w)
		}
		if fit.SE[i] > 1e-6 {
			t.Errorf("exact fit SE[%d] = %v", i, fit.SE[i])
		}
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Errorf("R2 = %v", fit.R2)
	}
}

func TestMultipleRegressionMatchesSimple(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 200
	x := make([]float64, n)
	y := make([]float64, n)
	design := make([][]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64() * 3
		y[i] = 1 + 2*x[i] + rng.NormFloat64()
		design[i] = []float64{1, x[i]}
	}
	simple, err := LinearRegression(x, y)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := MultipleRegression(design, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(simple.Intercept-multi.Coef[0]) > 1e-9 ||
		math.Abs(simple.Slope-multi.Coef[1]) > 1e-9 {
		t.Fatalf("coefficients differ: simple (%v, %v) vs multi %v",
			simple.Intercept, simple.Slope, multi.Coef)
	}
	if math.Abs(simple.SlopeSE-multi.SE[1]) > 1e-9 {
		t.Fatalf("slope SE differ: %v vs %v", simple.SlopeSE, multi.SE[1])
	}
}

func TestMultipleRegressionErrors(t *testing.T) {
	if _, err := MultipleRegression(nil, nil); err == nil {
		t.Error("empty design should error")
	}
	if _, err := MultipleRegression([][]float64{{1, 2}}, []float64{1}); !errors.Is(err, ErrTooShort) {
		t.Error("n <= k should return ErrTooShort")
	}
	// Collinear design.
	design := make([][]float64, 10)
	y := make([]float64, 10)
	for i := range design {
		v := float64(i)
		design[i] = []float64{1, v, 2 * v}
		y[i] = v
	}
	if _, err := MultipleRegression(design, y); !errors.Is(err, ErrConstant) {
		t.Error("collinear design should return ErrConstant")
	}
	// Ragged design.
	if _, err := MultipleRegression([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("ragged design should error")
	}
}

// Property: adding a column of pure noise never lowers R^2.
func TestMultipleRegressionR2MonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(50)
		d2 := make([][]float64, n)
		d3 := make([][]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			x1 := rng.NormFloat64()
			noise := rng.NormFloat64()
			d2[i] = []float64{1, x1}
			d3[i] = []float64{1, x1, noise}
			y[i] = 0.5 + x1 + rng.NormFloat64()
		}
		f2, err1 := MultipleRegression(d2, y)
		f3, err2 := MultipleRegression(d3, y)
		if err1 != nil || err2 != nil {
			return true // degenerate draw
		}
		return f3.R2 >= f2.R2-1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
