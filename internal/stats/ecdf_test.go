package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestECDFBasics(t *testing.T) {
	e, err := NewECDF([]float64{3, 1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if e.N() != 4 {
		t.Fatalf("N = %d, want 4", e.N())
	}
	cases := []struct{ v, want float64 }{
		{0, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.CDF(c.v); got != c.want {
			t.Errorf("CDF(%v) = %v, want %v", c.v, got, c.want)
		}
		if got := e.CCDF(c.v); math.Abs(got-(1-c.want)) > 1e-15 {
			t.Errorf("CCDF(%v) = %v, want %v", c.v, got, 1-c.want)
		}
	}
}

func TestECDFEmpty(t *testing.T) {
	if _, err := NewECDF(nil); err != ErrEmpty {
		t.Fatalf("NewECDF(nil) error = %v, want ErrEmpty", err)
	}
}

func TestECDFDoesNotMutateInput(t *testing.T) {
	x := []float64{3, 1, 2}
	if _, err := NewECDF(x); err != nil {
		t.Fatal(err)
	}
	if x[0] != 3 || x[1] != 1 || x[2] != 2 {
		t.Fatalf("NewECDF mutated input: %v", x)
	}
}

func TestLLCDPointsStructure(t *testing.T) {
	e, err := NewECDF([]float64{1, 10, 100, 1000})
	if err != nil {
		t.Fatal(err)
	}
	pts := e.LLCD()
	// The maximum is excluded (CCDF = 0), so 3 points remain.
	if len(pts) != 3 {
		t.Fatalf("LLCD has %d points, want 3", len(pts))
	}
	wantX := []float64{0, 1, 2}
	wantY := []float64{math.Log10(0.75), math.Log10(0.5), math.Log10(0.25)}
	for i, p := range pts {
		if math.Abs(p.LogX-wantX[i]) > 1e-12 || math.Abs(p.LogCCDF-wantY[i]) > 1e-12 {
			t.Errorf("point %d = %+v, want (%v, %v)", i, p, wantX[i], wantY[i])
		}
	}
}

func TestLLCDSkipsNonPositive(t *testing.T) {
	e, err := NewECDF([]float64{-5, 0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	pts := e.LLCD()
	if len(pts) != 1 { // only x=1 qualifies (x=2 is the max)
		t.Fatalf("LLCD = %+v, want a single point", pts)
	}
	if pts[0].LogX != 0 {
		t.Fatalf("LLCD point LogX = %v, want 0", pts[0].LogX)
	}
}

func TestLLCDDuplicatesCollapse(t *testing.T) {
	e, err := NewECDF([]float64{2, 2, 2, 8})
	if err != nil {
		t.Fatal(err)
	}
	pts := e.LLCD()
	if len(pts) != 1 {
		t.Fatalf("LLCD has %d points, want 1 (duplicates collapse, max excluded)", len(pts))
	}
	if math.Abs(pts[0].LogCCDF-math.Log10(0.25)) > 1e-12 {
		t.Fatalf("LLCD CCDF = %v, want log10(0.25)", pts[0].LogCCDF)
	}
}

// Property: ECDF.CDF is monotone nondecreasing and hits 0 below min and 1
// at max.
func TestECDFMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(100)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64() * 100
		}
		e, err := NewECDF(x)
		if err != nil {
			return false
		}
		sorted := append([]float64(nil), x...)
		sort.Float64s(sorted)
		if e.CDF(sorted[0]-1) != 0 || e.CDF(sorted[n-1]) != 1 {
			return false
		}
		prev := 0.0
		for v := sorted[0] - 1; v <= sorted[n-1]+1; v += (sorted[n-1] - sorted[0] + 2) / 53 {
			c := e.CDF(v)
			if c < prev {
				return false
			}
			prev = c
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: LLCD points are strictly decreasing in LogCCDF as LogX grows.
func TestLLCDMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(200)
		x := make([]float64, n)
		for i := range x {
			x[i] = math.Exp(r.NormFloat64())
		}
		e, err := NewECDF(x)
		if err != nil {
			return false
		}
		pts := e.LLCD()
		for i := 1; i < len(pts); i++ {
			if pts[i].LogX <= pts[i-1].LogX || pts[i].LogCCDF >= pts[i-1].LogCCDF {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBinomialPMF(t *testing.T) {
	// Binomial(4, 0.5): pmf = {1,4,6,4,1}/16.
	want := []float64{1.0 / 16, 4.0 / 16, 6.0 / 16, 4.0 / 16, 1.0 / 16}
	for k, w := range want {
		got, err := BinomialPMF(4, k, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-w) > 1e-12 {
			t.Errorf("BinomialPMF(4,%d,0.5) = %v, want %v", k, got, w)
		}
	}
}

func TestBinomialPMFEdge(t *testing.T) {
	if got, _ := BinomialPMF(5, 0, 0); got != 1 {
		t.Errorf("PMF(5,0,0) = %v, want 1", got)
	}
	if got, _ := BinomialPMF(5, 3, 0); got != 0 {
		t.Errorf("PMF(5,3,0) = %v, want 0", got)
	}
	if got, _ := BinomialPMF(5, 5, 1); got != 1 {
		t.Errorf("PMF(5,5,1) = %v, want 1", got)
	}
	if _, err := BinomialPMF(4, 5, 0.5); err == nil {
		t.Error("k > n should error")
	}
	if _, err := BinomialPMF(4, 2, 1.5); err == nil {
		t.Error("p > 1 should error")
	}
}

func TestBinomialCDFPaperCase(t *testing.T) {
	// The paper's Poisson battery uses B(4, 0.95): P[S = s] for small s is
	// tiny, e.g. P[S <= 1] = pmf(0) + pmf(1).
	pmf0, _ := BinomialPMF(4, 0, 0.95)
	pmf1, _ := BinomialPMF(4, 1, 0.95)
	cdf1, err := BinomialCDF(4, 1, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cdf1-(pmf0+pmf1)) > 1e-14 {
		t.Fatalf("CDF(1) = %v, want pmf0+pmf1 = %v", cdf1, pmf0+pmf1)
	}
	if cdf1 > 0.05 {
		t.Fatalf("P[S<=1] = %v for B(4,0.95); expected < 0.05 (drives rejection)", cdf1)
	}
}

func TestBinomialUpperTail(t *testing.T) {
	up, err := BinomialUpperTail(4, 4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(up-1.0/16) > 1e-12 {
		t.Fatalf("P[X>=4] = %v, want 1/16", up)
	}
	if up, _ := BinomialUpperTail(4, 0, 0.5); up != 1 {
		t.Fatalf("P[X>=0] = %v, want 1", up)
	}
}

// Property: CDF sums the PMF and is monotone in k.
func TestBinomialCDFSumsProperty(t *testing.T) {
	f := func(rawN uint8, rawP float64) bool {
		n := int(rawN%20) + 1
		p := math.Mod(math.Abs(rawP), 1)
		if math.IsNaN(p) {
			return true
		}
		total := 0.0
		prev := 0.0
		for k := 0; k <= n; k++ {
			pmf, err := BinomialPMF(n, k, p)
			if err != nil {
				return false
			}
			total += pmf
			cdf, err := BinomialCDF(n, k, p)
			if err != nil {
				return false
			}
			if cdf < prev-1e-12 || math.Abs(cdf-total) > 1e-9 {
				return false
			}
			prev = cdf
		}
		return math.Abs(total-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
