package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestPACFOnAR1(t *testing.T) {
	// AR(1): PACF is phi at lag 1 and ~0 beyond.
	const phi = 0.6
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 50000)
	for i := 1; i < len(x); i++ {
		x[i] = phi*x[i-1] + rng.NormFloat64()
	}
	pacf, err := PartialAutocorrelation(x, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pacf[1]-phi) > 0.02 {
		t.Errorf("pacf[1] = %v, want ~%v", pacf[1], phi)
	}
	bound := 4 / math.Sqrt(float64(len(x)))
	for k := 2; k <= 5; k++ {
		if math.Abs(pacf[k]) > bound {
			t.Errorf("AR(1) pacf[%d] = %v, want ~0", k, pacf[k])
		}
	}
}

func TestPACFOnAR2(t *testing.T) {
	// AR(2) with coefficients (0.5, 0.3): PACF cuts off after lag 2 and
	// pacf[2] equals the second coefficient.
	rng := rand.New(rand.NewSource(2))
	x := make([]float64, 100000)
	for i := 2; i < len(x); i++ {
		x[i] = 0.5*x[i-1] + 0.3*x[i-2] + rng.NormFloat64()
	}
	pacf, err := PartialAutocorrelation(x, 6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pacf[2]-0.3) > 0.02 {
		t.Errorf("pacf[2] = %v, want ~0.3", pacf[2])
	}
	bound := 4 / math.Sqrt(float64(len(x)))
	for k := 3; k <= 6; k++ {
		if math.Abs(pacf[k]) > bound {
			t.Errorf("AR(2) pacf[%d] = %v, want ~0", k, pacf[k])
		}
	}
}

func TestPACFErrors(t *testing.T) {
	if _, err := PartialAutocorrelation([]float64{1, 2, 3}, 0); err == nil {
		t.Error("maxLag 0 should error")
	}
	if _, err := PartialAutocorrelation([]float64{5, 5, 5, 5}, 2); err == nil {
		t.Error("constant series should error")
	}
}
