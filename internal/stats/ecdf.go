package stats

import (
	"math"
	"sort"
)

// ECDF is an empirical cumulative distribution function built from a
// sample. The zero value is not usable; construct with NewECDF.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an empirical CDF from x. The input is copied and sorted;
// x itself is not modified.
func NewECDF(x []float64) (*ECDF, error) {
	if len(x) == 0 {
		return nil, ErrEmpty
	}
	sorted := make([]float64, len(x))
	copy(sorted, x)
	sort.Float64s(sorted)
	return &ECDF{sorted: sorted}, nil
}

// N returns the number of observations underlying the ECDF.
func (e *ECDF) N() int { return len(e.sorted) }

// CDF returns the fraction of observations <= v.
func (e *ECDF) CDF(v float64) float64 {
	// sort.SearchFloat64s returns the first index with sorted[i] >= v; we
	// want the count of values <= v, so search for the first index > v.
	idx := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > v })
	return float64(idx) / float64(len(e.sorted))
}

// CCDF returns the empirical complementary CDF P[X > v].
func (e *ECDF) CCDF(v float64) float64 {
	return 1 - e.CDF(v)
}

// Sorted returns the underlying sorted sample. The caller must not modify
// the returned slice.
func (e *ECDF) Sorted() []float64 { return e.sorted }

// LLCDPoint is one point of a log-log complementary distribution plot.
type LLCDPoint struct {
	LogX    float64 // log10 of the value
	LogCCDF float64 // log10 of P[X > x]
}

// LLCD returns the log-log complementary distribution plot points of the
// sample: for each distinct positive value x (excluding the maximum, where
// the empirical CCDF is zero), the pair (log10 x, log10 P[X > x]).
// Non-positive observations are skipped since they have no logarithm; the
// paper's intra-session characteristics are all positive.
func (e *ECDF) LLCD() []LLCDPoint {
	n := len(e.sorted)
	points := make([]LLCDPoint, 0, n)
	for i := 0; i < n; {
		v := e.sorted[i]
		j := i
		for j < n && e.sorted[j] == v {
			j++
		}
		// P[X > v] = (n - j) / n using the count of values strictly above v.
		ccdf := float64(n-j) / float64(n)
		if v > 0 && ccdf > 0 {
			points = append(points, LLCDPoint{
				LogX:    math.Log10(v),
				LogCCDF: math.Log10(ccdf),
			})
		}
		i = j
	}
	return points
}
