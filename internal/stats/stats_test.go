package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	got, err := Mean([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
	if _, err := Mean(nil); err != ErrEmpty {
		t.Fatalf("Mean(nil) error = %v, want ErrEmpty", err)
	}
}

func TestVariance(t *testing.T) {
	got, err := Variance([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	want := 32.0 / 7.0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", got, want)
	}
	if _, err := Variance([]float64{1}); err != ErrTooShort {
		t.Fatalf("Variance(single) error = %v, want ErrTooShort", err)
	}
}

func TestPopulationVariance(t *testing.T) {
	got, err := PopulationVariance([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-4) > 1e-12 {
		t.Fatalf("PopulationVariance = %v, want 4", got)
	}
}

func TestMinMax(t *testing.T) {
	min, max, err := MinMax([]float64{3, -1, 7, 0})
	if err != nil {
		t.Fatal(err)
	}
	if min != -1 || max != 7 {
		t.Fatalf("MinMax = %v, %v; want -1, 7", min, max)
	}
}

func TestQuantile(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, c := range cases {
		got, err := Quantile(x, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if _, err := Quantile(x, 1.5); err == nil {
		t.Error("Quantile(1.5) should error")
	}
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Error("Quantile(nil) should return ErrEmpty")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	x := []float64{5, 1, 3}
	if _, err := Quantile(x, 0.5); err != nil {
		t.Fatal(err)
	}
	if x[0] != 5 || x[1] != 1 || x[2] != 3 {
		t.Fatalf("Quantile mutated input: %v", x)
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 || s.Sum != 15 {
		t.Fatalf("Summarize = %+v", s)
	}
	if math.Abs(s.Variance-2.5) > 1e-12 {
		t.Fatalf("Summarize variance = %v, want 2.5", s.Variance)
	}
	if _, err := Summarize([]float64{1}); err != ErrTooShort {
		t.Fatal("Summarize(single) should return ErrTooShort")
	}
}

func TestAutocorrelationWhiteNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, 20000)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	acf, err := Autocorrelation(x, 5)
	if err != nil {
		t.Fatal(err)
	}
	if acf[0] != 1 {
		t.Fatalf("acf[0] = %v, want 1", acf[0])
	}
	bound := 3 / math.Sqrt(float64(len(x)))
	for k := 1; k <= 5; k++ {
		if math.Abs(acf[k]) > bound {
			t.Errorf("white noise acf[%d] = %v, beyond 3/sqrt(n) = %v", k, acf[k], bound)
		}
	}
}

func TestAutocorrelationAR1(t *testing.T) {
	// AR(1) with coefficient phi has acf(k) ~ phi^k.
	const phi = 0.7
	rng := rand.New(rand.NewSource(8))
	x := make([]float64, 100000)
	x[0] = rng.NormFloat64()
	for i := 1; i < len(x); i++ {
		x[i] = phi*x[i-1] + rng.NormFloat64()
	}
	acf, err := Autocorrelation(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 3; k++ {
		want := math.Pow(phi, float64(k))
		if math.Abs(acf[k]-want) > 0.02 {
			t.Errorf("AR(1) acf[%d] = %v, want ~%v", k, acf[k], want)
		}
	}
}

func TestAutocorrelationErrors(t *testing.T) {
	if _, err := Autocorrelation([]float64{1}, 0); err != ErrTooShort {
		t.Error("short series should return ErrTooShort")
	}
	if _, err := Autocorrelation([]float64{1, 2, 3}, 3); err == nil {
		t.Error("maxLag >= n should error")
	}
	if _, err := Autocorrelation([]float64{5, 5, 5}, 1); err != ErrConstant {
		t.Error("constant series should return ErrConstant")
	}
}

func TestAutocorrelationFFTMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := make([]float64, 1337)
	for i := range x {
		x[i] = rng.NormFloat64() + math.Sin(float64(i)/10)
	}
	direct, err := Autocorrelation(x, 50)
	if err != nil {
		t.Fatal(err)
	}
	viaFFT, err := AutocorrelationFFT(x, 50)
	if err != nil {
		t.Fatal(err)
	}
	for k := range direct {
		if math.Abs(direct[k]-viaFFT[k]) > 1e-9 {
			t.Fatalf("lag %d: direct %v vs fft %v", k, direct[k], viaFFT[k])
		}
	}
}

func TestAutocorrelationFFTErrors(t *testing.T) {
	if _, err := AutocorrelationFFT([]float64{1}, 0); err != ErrTooShort {
		t.Error("short series should return ErrTooShort")
	}
	if _, err := AutocorrelationFFT([]float64{2, 2, 2, 2}, 2); err != ErrConstant {
		t.Error("constant series should return ErrConstant")
	}
	if _, err := AutocorrelationFFT([]float64{1, 2, 3}, 5); err == nil {
		t.Error("maxLag >= n should error")
	}
}

func TestLag1Autocorrelation(t *testing.T) {
	// Strictly alternating series has lag-1 autocorrelation near -1.
	x := make([]float64, 1000)
	for i := range x {
		x[i] = float64(i%2)*2 - 1
	}
	r, err := Lag1Autocorrelation(x)
	if err != nil {
		t.Fatal(err)
	}
	if r > -0.99 {
		t.Fatalf("alternating lag-1 acf = %v, want ~ -1", r)
	}
}

func TestLinearRegressionExact(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = 3 - 2*v
	}
	fit, err := LinearRegression(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope+2) > 1e-12 || math.Abs(fit.Intercept-3) > 1e-12 {
		t.Fatalf("fit = %+v, want slope -2 intercept 3", fit)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Fatalf("R2 = %v, want 1", fit.R2)
	}
	if fit.SlopeSE > 1e-10 {
		t.Fatalf("exact fit SlopeSE = %v, want ~0", fit.SlopeSE)
	}
}

func TestLinearRegressionNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := 5000
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i) / 100
		y[i] = 1.5 + 0.75*x[i] + rng.NormFloat64()
	}
	fit, err := LinearRegression(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-0.75) > 5*fit.SlopeSE {
		t.Fatalf("slope %v ± %v too far from 0.75", fit.Slope, fit.SlopeSE)
	}
	if fit.R2 < 0.8 {
		t.Fatalf("R2 = %v too low for strong signal", fit.R2)
	}
}

func TestLinearRegressionErrors(t *testing.T) {
	if _, err := LinearRegression([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := LinearRegression([]float64{1, 2}, []float64{1, 2}); err != ErrTooShort {
		t.Error("n < 3 should return ErrTooShort")
	}
	if _, err := LinearRegression([]float64{2, 2, 2}, []float64{1, 2, 3}); err != ErrConstant {
		t.Error("constant x should return ErrConstant")
	}
}

func TestWeightedLinearRegressionEqualWeightsMatchesOLS(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 50
	x := make([]float64, n)
	y := make([]float64, n)
	w := make([]float64, n)
	for i := range x {
		x[i] = float64(i)
		y[i] = 2 + 0.5*x[i] + rng.NormFloat64()
		w[i] = 1
	}
	ols, err := LinearRegression(x, y)
	if err != nil {
		t.Fatal(err)
	}
	wls, err := WeightedLinearRegression(x, y, w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ols.Slope-wls.Slope) > 1e-10 || math.Abs(ols.Intercept-wls.Intercept) > 1e-10 {
		t.Fatalf("OLS %+v vs WLS %+v disagree with unit weights", ols, wls)
	}
}

func TestWeightedLinearRegressionErrors(t *testing.T) {
	if _, err := WeightedLinearRegression([]float64{1, 2}, []float64{1, 2}, []float64{1, -1}); err == nil {
		t.Error("negative weight should error")
	}
	if _, err := WeightedLinearRegression([]float64{1}, []float64{1}, []float64{1}); err != ErrTooShort {
		t.Error("n < 2 should return ErrTooShort")
	}
	if _, err := WeightedLinearRegression([]float64{1, 2}, []float64{1}, []float64{1, 1}); err == nil {
		t.Error("length mismatch should error")
	}
}

// Property: regression on (x, a + b*x) recovers a and b exactly for any
// non-degenerate x.
func TestLinearRegressionRecoversExactLineProperty(t *testing.T) {
	f := func(seed int64, a, b float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		if math.Abs(a) > 1e6 || math.Abs(b) > 1e6 {
			return true
		}
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(40)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64() * 10
			y[i] = a + b*x[i]
		}
		fit, err := LinearRegression(x, y)
		if err == ErrConstant {
			return true
		}
		if err != nil {
			return false
		}
		scale := 1 + math.Abs(a) + math.Abs(b)
		return math.Abs(fit.Slope-b) < 1e-6*scale && math.Abs(fit.Intercept-a) < 1e-6*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkACFMethods(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	x := make([]float64, 100000)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.Run("direct-1000lags", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Autocorrelation(x, 1000); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fft-1000lags", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := AutocorrelationFFT(x, 1000); err != nil {
				b.Fatal(err)
			}
		}
	})
}
