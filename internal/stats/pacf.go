package stats

import (
	"fmt"
)

// PartialAutocorrelation returns the partial autocorrelation function of
// x at lags 1..maxLag via the Levinson-Durbin recursion — the standard
// Box-Jenkins companion to the ACF for identifying autoregressive
// structure in the arrival count series.
func PartialAutocorrelation(x []float64, maxLag int) ([]float64, error) {
	if maxLag < 1 {
		return nil, fmt.Errorf("stats: maxLag %d < 1", maxLag)
	}
	acf, err := AutocorrelationFFT(x, maxLag)
	if err != nil {
		return nil, err
	}
	pacf := make([]float64, maxLag+1)
	pacf[0] = 1
	// Levinson-Durbin on the Toeplitz system of autocorrelations.
	phi := make([]float64, maxLag+1)  // phi[k][j] current row
	prev := make([]float64, maxLag+1) // previous row
	variance := 1.0
	for k := 1; k <= maxLag; k++ {
		num := acf[k]
		for j := 1; j < k; j++ {
			num -= prev[j] * acf[k-j]
		}
		if variance <= 0 {
			return nil, fmt.Errorf("stats: Levinson-Durbin broke down at lag %d (singular autocorrelation)", k)
		}
		reflect := num / variance
		phi[k] = reflect
		for j := 1; j < k; j++ {
			phi[j] = prev[j] - reflect*prev[k-j]
		}
		variance *= 1 - reflect*reflect
		copy(prev, phi)
		pacf[k] = reflect
	}
	return pacf, nil
}
