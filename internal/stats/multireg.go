package stats

import (
	"fmt"
	"math"
)

// MultiFit holds an ordinary least squares fit of y on k regressors
// (plus an intercept when requested by the caller via a constant
// column).
type MultiFit struct {
	// Coef[i] is the coefficient of column i of the design matrix.
	Coef []float64
	// SE[i] is the standard error of Coef[i].
	SE []float64
	// ResidualVar is the unbiased residual variance (n-k dof).
	ResidualVar float64
	R2          float64
	N           int
}

// MultipleRegression fits y = X*b by ordinary least squares via the
// normal equations with partial pivoting. X is row-major: X[i] is the
// regressor vector of observation i (include a constant 1 column for an
// intercept). It requires n > k and a non-singular design.
func MultipleRegression(x [][]float64, y []float64) (MultiFit, error) {
	n := len(x)
	if n == 0 || n != len(y) {
		return MultiFit{}, fmt.Errorf("stats: design %d rows vs %d responses", n, len(y))
	}
	k := len(x[0])
	if k == 0 {
		return MultiFit{}, fmt.Errorf("stats: empty design row")
	}
	if n <= k {
		return MultiFit{}, fmt.Errorf("%w: %d observations for %d coefficients", ErrTooShort, n, k)
	}
	// Normal equations: (X'X) b = X'y.
	xtx := make([][]float64, k)
	for i := range xtx {
		xtx[i] = make([]float64, k)
	}
	xty := make([]float64, k)
	for r := 0; r < n; r++ {
		row := x[r]
		if len(row) != k {
			return MultiFit{}, fmt.Errorf("stats: ragged design at row %d", r)
		}
		for i := 0; i < k; i++ {
			for j := i; j < k; j++ {
				xtx[i][j] += row[i] * row[j]
			}
			xty[i] += row[i] * y[r]
		}
	}
	for i := 0; i < k; i++ {
		for j := 0; j < i; j++ {
			xtx[i][j] = xtx[j][i]
		}
	}
	inv, err := invertSymmetric(xtx)
	if err != nil {
		return MultiFit{}, err
	}
	coef := make([]float64, k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			coef[i] += inv[i][j] * xty[j]
		}
	}
	// Residuals.
	ssRes := 0.0
	meanY, _ := Mean(y)
	ssTot := 0.0
	for r := 0; r < n; r++ {
		pred := 0.0
		for i := 0; i < k; i++ {
			pred += coef[i] * x[r][i]
		}
		d := y[r] - pred
		ssRes += d * d
		dy := y[r] - meanY
		ssTot += dy * dy
	}
	resVar := ssRes / float64(n-k)
	se := make([]float64, k)
	for i := 0; i < k; i++ {
		se[i] = math.Sqrt(resVar * inv[i][i])
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return MultiFit{Coef: coef, SE: se, ResidualVar: resVar, R2: r2, N: n}, nil
}

// invertSymmetric inverts a small symmetric positive-definite-ish matrix
// by Gauss-Jordan with partial pivoting.
func invertSymmetric(a [][]float64) ([][]float64, error) {
	k := len(a)
	// Augment with identity.
	work := make([][]float64, k)
	for i := range work {
		work[i] = make([]float64, 2*k)
		copy(work[i], a[i])
		work[i][k+i] = 1
	}
	for col := 0; col < k; col++ {
		pivot := col
		for r := col + 1; r < k; r++ {
			if math.Abs(work[r][col]) > math.Abs(work[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(work[pivot][col]) < 1e-12 {
			return nil, fmt.Errorf("%w: singular design matrix", ErrConstant)
		}
		work[col], work[pivot] = work[pivot], work[col]
		p := work[col][col]
		for c := 0; c < 2*k; c++ {
			work[col][c] /= p
		}
		for r := 0; r < k; r++ {
			if r == col {
				continue
			}
			f := work[r][col]
			if f == 0 {
				continue
			}
			for c := 0; c < 2*k; c++ {
				work[r][c] -= f * work[col][c]
			}
		}
	}
	inv := make([][]float64, k)
	for i := range inv {
		inv[i] = work[i][k:]
	}
	return inv, nil
}
