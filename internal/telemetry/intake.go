// Serve-mode intake publications: the copy-on-publish view of the
// multi-source intake queue's state (per-source totals, buffer
// occupancy, completion) that the intake health rules and the serve
// endpoints read. The intake publishes a fresh immutable value under
// its own lock on every state change; readers never touch live intake
// buffers (DESIGN.md §15).

package telemetry

import "time"

// IntakeSource is one registered source's accounting in an intake
// publication. Sources appear in their declared fold order.
type IntakeSource struct {
	// Name is the source ID (the /ingest ?source= value or the TCP
	// handshake name).
	Name string `json:"name"`
	// Bytes and Lines are the totals accepted from this source so far;
	// Requests counts accepted intake requests/connection reads.
	Bytes    int64 `json:"bytes"`
	Lines    int64 `json:"lines"`
	Requests int64 `json:"requests"`
	// Buffered is the source's current undrained buffer occupancy.
	Buffered int64 `json:"buffered"`
	// Complete is set once the source has been marked finished.
	Complete bool `json:"complete"`
	// LastAt is the wall-clock stamp of the source's last accepted
	// delivery (its registration time before the first one) — the
	// source-staleness rule's reference point.
	LastAt time.Time `json:"last_at"`
}

// IntakeStats is one copy-on-publish view of the intake queue.
type IntakeStats struct {
	// Sources holds every registered source in fold order.
	Sources []IntakeSource `json:"sources"`
	// Active is the index of the source currently being drained into
	// the engine (== len(Sources) once all are drained).
	Active int `json:"active"`
	// BufferCap is the per-source buffer bound in bytes.
	BufferCap int64 `json:"buffer_cap"`
	// Draining is set once shutdown has begun (listeners closed, every
	// source force-completed).
	Draining bool `json:"draining"`
}

// PublishedIntake is one immutable intake publication.
type PublishedIntake struct {
	Seq   int64       `json:"seq"`
	At    time.Time   `json:"at"`
	Stats IntakeStats `json:"stats"`
}

// PublishIntake stores a fresh intake publication. Multi-publisher
// (every intake connection goroutine), so the seq read-modify-write is
// serialized by the holder's intake lock.
func (h *Holder) PublishIntake(st IntakeStats) {
	h.intakeMu.Lock()
	defer h.intakeMu.Unlock()
	next := &PublishedIntake{At: h.clock.Now(), Stats: st}
	if old := h.intake.Load(); old != nil {
		next.Seq = old.Seq + 1
	} else {
		next.Seq = 1
	}
	h.intake.Store(next)
}

// LatestIntake returns the most recent intake publication; ok is false
// before the first one.
func (h *Holder) LatestIntake() (PublishedIntake, bool) {
	p := h.intake.Load()
	if p == nil {
		return PublishedIntake{}, false
	}
	return *p, true
}
