// Package telemetry is the live observation surface over the
// streaming engine: an atomic copy-on-publish holder for the engine's
// runtime stats and trace-time snapshots, health rules evaluated on
// demand against the held state, a read-only HTTP service (/metrics,
// /snapshot, /healthz, /readyz), and the end-of-run JSON report. The
// engine publishes immutable values; HTTP handlers only ever read what
// was published — the mux never touches live engine state
// (DESIGN.md §14).
package telemetry

import (
	"sync"
	"sync/atomic"
	"time"

	"fullweb/internal/obs"
	"fullweb/internal/stream"
)

// PublishedRuntime is one immutable runtime publication: the engine's
// copy-on-publish counters plus the holder's sequence number and
// wall-clock stamp (observability only — never part of analysis
// output).
type PublishedRuntime struct {
	Seq   int64               `json:"seq"`
	At    time.Time           `json:"at"`
	Stats stream.RuntimeStats `json:"stats"`
}

// PublishedSnapshot is one immutable trace-time snapshot publication.
type PublishedSnapshot struct {
	Seq      int64            `json:"seq"`
	At       time.Time        `json:"published_at"`
	Snapshot *stream.Snapshot `json:"snapshot"`
}

// PublishedArrivals is one immutable arrival-series publication — the
// copy-on-publish ring view the serve-mode what-if layer computes
// from. Handlers read this copy and never the engine's live ring.
type PublishedArrivals struct {
	Seq    int64                 `json:"seq"`
	At     time.Time             `json:"published_at"`
	Series *stream.ArrivalSeries `json:"series"`
}

// runtimePair is the holder's runtime cell: the current publication,
// the previous one (growth-rate rules difference the two), and the
// stamp of the last observed checkpoint-count increase.
type runtimePair struct {
	cur  PublishedRuntime
	prev *PublishedRuntime
	// lastCheckpointAt is when Checkpoints last increased — the
	// checkpoint-staleness rule's reference point. Initialized to the
	// holder's start time so a run that never checkpoints ages from
	// startup.
	lastCheckpointAt time.Time
}

// Holder is the atomic copy-on-publish hand-off between the engine's
// fold goroutine (the single publisher) and any number of concurrent
// readers (HTTP handlers, health rules). Each publication builds a
// fresh immutable cell and swaps a pointer; readers always see a
// complete, stamped publication and never a partially written one.
type Holder struct {
	clock   obs.Clock
	started time.Time
	runtime atomic.Pointer[runtimePair]
	snap    atomic.Pointer[PublishedSnapshot]
	arr     atomic.Pointer[PublishedArrivals]
	// intake is the serve-mode intake publication cell. Unlike the
	// engine cells it has multiple publishers (every intake connection
	// goroutine), so its seq read-modify-write is serialized by
	// intakeMu; readers stay lock-free on the atomic pointer.
	intakeMu sync.Mutex
	intake   atomic.Pointer[PublishedIntake]
	// wal is the serve-mode journal publication cell; single-publisher
	// (the supervisor on the fold goroutine) like the runtime cell.
	wal atomic.Pointer[PublishedWAL]
}

// NewHolder builds a holder stamping publications with clock.
func NewHolder(clock obs.Clock) *Holder {
	return &Holder{clock: clock, started: clock.Now()}
}

// StartedAt returns the holder's construction stamp.
func (h *Holder) StartedAt() time.Time { return h.started }

// PublishRuntime implements stream.Telemetry. Single-publisher: the
// engine's fold goroutine is the only caller, so read-modify-write on
// the cell pointer needs no CAS loop.
func (h *Holder) PublishRuntime(rt stream.RuntimeStats) {
	now := h.clock.Now()
	next := &runtimePair{lastCheckpointAt: h.started}
	if old := h.runtime.Load(); old != nil {
		next.cur.Seq = old.cur.Seq + 1
		prev := old.cur
		next.prev = &prev
		next.lastCheckpointAt = old.lastCheckpointAt
		if rt.Checkpoints > old.cur.Stats.Checkpoints {
			next.lastCheckpointAt = now
		}
	} else {
		next.cur.Seq = 1
		if rt.Checkpoints > 0 {
			// First publication already carries checkpoints (resumed
			// run): treat them as fresh as of now.
			next.lastCheckpointAt = now
		}
	}
	next.cur.At = now
	next.cur.Stats = rt
	h.runtime.Store(next)
}

// PublishSnapshot implements stream.Telemetry.
func (h *Holder) PublishSnapshot(s *stream.Snapshot) {
	next := &PublishedSnapshot{At: h.clock.Now(), Snapshot: s}
	if old := h.snap.Load(); old != nil {
		next.Seq = old.Seq + 1
	} else {
		next.Seq = 1
	}
	h.snap.Store(next)
}

// LatestRuntime returns the most recent runtime publication and the
// one before it (nil when fewer than two have been published). ok is
// false before the first publication.
func (h *Holder) LatestRuntime() (cur PublishedRuntime, prev *PublishedRuntime, ok bool) {
	p := h.runtime.Load()
	if p == nil {
		return PublishedRuntime{}, nil, false
	}
	return p.cur, p.prev, true
}

// PublishArrivals implements stream.ArrivalPublisher. Single-publisher
// like the runtime cell: the engine's fold goroutine is the only
// caller.
func (h *Holder) PublishArrivals(s *stream.ArrivalSeries) {
	next := &PublishedArrivals{At: h.clock.Now(), Series: s}
	if old := h.arr.Load(); old != nil {
		next.Seq = old.Seq + 1
	} else {
		next.Seq = 1
	}
	h.arr.Store(next)
}

// LatestArrivals returns the most recent arrival-series publication;
// ok is false before the first one.
func (h *Holder) LatestArrivals() (PublishedArrivals, bool) {
	p := h.arr.Load()
	if p == nil {
		return PublishedArrivals{}, false
	}
	return *p, true
}

// LatestSnapshot returns the most recent snapshot publication; ok is
// false before the first one.
func (h *Holder) LatestSnapshot() (PublishedSnapshot, bool) {
	p := h.snap.Load()
	if p == nil {
		return PublishedSnapshot{}, false
	}
	return *p, true
}

// LastCheckpointAt returns when the holder last saw the checkpoint
// count increase (the holder's start time when it never has) — the
// checkpoint-staleness rule's reference point.
func (h *Holder) LastCheckpointAt() time.Time {
	if p := h.runtime.Load(); p != nil {
		return p.lastCheckpointAt
	}
	return h.started
}
