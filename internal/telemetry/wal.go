// Serve-mode journal publications: the copy-on-publish view of the
// durable intake journal (journaled bytes, disk footprint, fold/
// checkpoint lag, shed state) that the wal-lag and wal-disk health
// rules and the /metrics gauges read. The serve supervisor publishes a
// fresh immutable value on every runtime publication; readers never
// touch live journal state (DESIGN.md §16).

package telemetry

import "time"

// WALStats is one copy-on-publish view of the durable intake journal.
type WALStats struct {
	// Dir is the journal directory.
	Dir string `json:"dir"`
	// JournaledBytes is the cumulative payload bytes journaled across
	// all sources (including bytes recovered from a previous run).
	JournaledBytes int64 `json:"journaled_bytes"`
	// DiskBytes is the journal's on-disk footprint: record framing,
	// payloads and quarantined segments; DiskBudgetBytes is its cap
	// (0 = unbounded).
	DiskBytes       int64 `json:"disk_bytes"`
	DiskBudgetBytes int64 `json:"disk_budget_bytes"`
	// Segments counts segment files ever opened; Deliveries counts
	// journaled deliveries; Duplicates counts redeliveries dropped by
	// delivery-ID dedup.
	Segments   int64 `json:"segments"`
	Deliveries int64 `json:"deliveries"`
	Duplicates int64 `json:"duplicates"`
	// ReplayedBytes is what restart recovery replayed from the journal;
	// QuarantinedSegments and TornTruncatedBytes count what recovery
	// had to set aside or cut.
	ReplayedBytes       int64 `json:"replayed_bytes"`
	QuarantinedSegments int64 `json:"quarantined_segments"`
	TornTruncatedBytes  int64 `json:"torn_truncated_bytes"`
	// LagBytes is journaled-but-not-yet-folded payload (the wal-lag
	// rule's input); CheckpointLagBytes is journaled-but-not-yet-
	// checkpointed payload (the supervisor's checkpoint trigger). Both
	// round down to delivery boundaries, so they are conservative
	// overestimates.
	LagBytes           int64 `json:"lag_bytes"`
	CheckpointLagBytes int64 `json:"checkpoint_lag_bytes"`
	// Shedding is set once the journal latched into shed mode (disk
	// fault or budget exhausted): intake refuses deliveries while the
	// engine keeps folding what was journaled.
	Shedding   bool   `json:"shedding"`
	ShedReason string `json:"shed_reason,omitempty"`
}

// PublishedWAL is one immutable journal publication.
type PublishedWAL struct {
	Seq   int64     `json:"seq"`
	At    time.Time `json:"at"`
	Stats WALStats  `json:"stats"`
}

// PublishWAL stores a fresh journal publication. Single-publisher
// like the runtime cell: the serve supervisor runs on the engine's
// fold goroutine, so no CAS loop is needed.
func (h *Holder) PublishWAL(st WALStats) {
	next := &PublishedWAL{At: h.clock.Now(), Stats: st}
	if old := h.wal.Load(); old != nil {
		next.Seq = old.Seq + 1
	} else {
		next.Seq = 1
	}
	h.wal.Store(next)
}

// LatestWAL returns the most recent journal publication; ok is false
// before the first one (and always for runs without a journal).
func (h *Holder) LatestWAL() (PublishedWAL, bool) {
	p := h.wal.Load()
	if p == nil {
		return PublishedWAL{}, false
	}
	return *p, true
}
