package telemetry

import (
	"fmt"
	"time"

	"fullweb/internal/obs"
	"fullweb/internal/stream"
	"fullweb/internal/weblog"
)

// Health-rule defaults. Warn thresholds deliberately trip before fail
// thresholds so a scraper sees the burn coming.
const (
	// DefaultMaxCheckpointAge fails /healthz when a checkpointing run
	// has not persisted a checkpoint for this long.
	DefaultMaxCheckpointAge = 10 * time.Minute
	// budgetWarnFraction warns when any error-budget dimension has
	// burned this fraction of its allowance.
	budgetWarnFraction = 0.8
	// DefaultSourceStaleAfter is the intake source-staleness bound: an
	// incomplete source silent longer than this draws a warning.
	DefaultSourceStaleAfter = 2 * time.Minute
	// intakeBufferWarnFraction warns when any source's intake buffer
	// occupancy reaches this fraction of the per-source cap; a
	// completely full buffer fails.
	intakeBufferWarnFraction = 0.8
	// DefaultMaxWALLagBytes bounds journaled-but-unfolded intake: a
	// crash now replays this much, so growth past it means the engine
	// is not keeping up with acknowledged deliveries.
	DefaultMaxWALLagBytes int64 = 256 << 20
	// walDiskWarnFraction warns when the journal's on-disk footprint
	// reaches this fraction of its budget; exhaustion (shedding) fails.
	walDiskWarnFraction = 0.8
)

// RuleResult is one health rule's verdict: status "ok", "warn" or
// "fail" plus a human-readable detail line.
type RuleResult struct {
	Rule   string `json:"rule"`
	Status string `json:"status"`
	Detail string `json:"detail"`
}

// HealthReport is the /healthz body: the overall verdict plus every
// rule's result in a fixed order.
type HealthReport struct {
	// Healthy is false when any rule failed (the /healthz 503 signal);
	// warnings do not unhealth the process.
	Healthy bool `json:"healthy"`
	// Ready reports whether the engine has published at least one
	// runtime view (the /readyz signal).
	Ready bool         `json:"ready"`
	Rules []RuleResult `json:"rules"`
}

// HealthConfig parameterizes the health rules from the run's
// configuration.
type HealthConfig struct {
	// Mode and Budget mirror the engine's ingestion config; the
	// error-budget rule re-evaluates the engine's own verdict logic
	// against the live counters.
	Mode   stream.Mode
	Budget stream.Budget
	// ChunkWindow is the parser's backpressure bound (chunks in
	// flight); 0 means weblog.DefaultChunkWindow.
	ChunkWindow int
	// Checkpointing enables the checkpoint-staleness rule.
	Checkpointing bool
	// MaxCheckpointAge overrides DefaultMaxCheckpointAge.
	MaxCheckpointAge time.Duration
	// MaxQuarantineRate bounds quarantine growth in bytes/second
	// between consecutive runtime publications; 0 disables the rule.
	MaxQuarantineRate float64
	// MaxFoldLag bounds how many parsed chunks may wait unfolded; 0
	// means the chunk window (the parser cannot run further ahead than
	// its backpressure bound, so exceeding it means accounting broke).
	MaxFoldLag int64
	// Intake enables the serve-mode intake rules (source staleness,
	// buffer occupancy), appended after the five stream rules in the
	// fixed order. Off for `fullweb stream`, which has no intake.
	Intake bool
	// SourceStaleAfter overrides DefaultSourceStaleAfter.
	SourceStaleAfter time.Duration
	// WAL enables the journal rules (wal-lag, wal-disk), appended after
	// the intake rules. Off unless serve runs with a journal.
	WAL bool
	// MaxWALLagBytes overrides DefaultMaxWALLagBytes.
	MaxWALLagBytes int64
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.ChunkWindow <= 0 {
		c.ChunkWindow = weblog.DefaultChunkWindow
	}
	if c.MaxCheckpointAge <= 0 {
		c.MaxCheckpointAge = DefaultMaxCheckpointAge
	}
	if c.MaxFoldLag <= 0 {
		c.MaxFoldLag = int64(c.ChunkWindow)
	}
	if c.SourceStaleAfter <= 0 {
		c.SourceStaleAfter = DefaultSourceStaleAfter
	}
	if c.MaxWALLagBytes <= 0 {
		c.MaxWALLagBytes = DefaultMaxWALLagBytes
	}
	return c
}

// Health evaluates the live health rules against the holder's latest
// publications and the metrics registry. Evaluation is read-only and
// safe to run concurrently with publication.
type Health struct {
	cfg    HealthConfig
	holder *Holder
	reg    *obs.Registry
	clock  obs.Clock
}

// NewHealth builds a health evaluator. reg may be nil (the
// parser-side rules then read zero counters).
func NewHealth(cfg HealthConfig, holder *Holder, reg *obs.Registry, clock obs.Clock) *Health {
	return &Health{cfg: cfg.withDefaults(), holder: holder, reg: reg, clock: clock}
}

// Evaluate runs every rule, in the fixed order of the DESIGN.md §14
// table: ingest-budget, backpressure, fold-lag, checkpoint,
// quarantine — then, in serve mode (cfg.Intake), source-staleness and
// intake-buffer (DESIGN.md §15).
func (h *Health) Evaluate() HealthReport {
	cur, prev, ready := h.holder.LatestRuntime()
	rep := HealthReport{Healthy: true, Ready: ready}
	rep.Rules = []RuleResult{
		h.ruleIngestBudget(cur, ready),
		h.ruleBackpressure(),
		h.ruleFoldLag(),
		h.ruleCheckpoint(ready),
		h.ruleQuarantine(cur, prev, ready),
	}
	if h.cfg.Intake {
		rep.Rules = append(rep.Rules,
			h.ruleSourceStaleness(),
			h.ruleIntakeBuffer(),
		)
	}
	if h.cfg.WAL {
		rep.Rules = append(rep.Rules,
			h.ruleWALLag(),
			h.ruleWALDisk(),
		)
	}
	for _, r := range rep.Rules {
		if r.Status == "fail" {
			rep.Healthy = false
		}
	}
	return rep
}

// ruleIngestBudget re-evaluates the engine's degradation verdict from
// the live counters and reports the budget burn fraction. A budget
// exactly exhausted is warn, not fail — the engine's own breach
// comparisons are strictly greater-than, so "at the limit" is still
// within budget.
func (h *Health) ruleIngestBudget(cur PublishedRuntime, ready bool) RuleResult {
	r := RuleResult{Rule: "ingest-budget", Status: "ok"}
	if !ready {
		r.Detail = "no runtime published yet"
		return r
	}
	st := cur.Stats.Ingest
	st.Evaluate(h.cfg.Mode, h.cfg.Budget, cur.Stats.Records)
	if st.Degraded {
		r.Status = "fail"
		r.Detail = "error budget breached: " + joinReasons(st.Reasons)
		return r
	}
	burn, dims := h.budgetBurn(st, cur.Stats.Records)
	if dims == 0 {
		r.Detail = "no error budget configured"
		return r
	}
	switch {
	case burn >= 1:
		r.Status = "warn"
		r.Detail = fmt.Sprintf("error budget exactly exhausted (burn %.0f%%)", burn*100)
	case burn >= budgetWarnFraction:
		r.Status = "warn"
		r.Detail = fmt.Sprintf("error budget burn %.0f%%", burn*100)
	default:
		r.Detail = fmt.Sprintf("error budget burn %.0f%%", burn*100)
	}
	return r
}

// budgetBurn returns the worst burned fraction across the configured
// budget dimensions and how many dimensions are configured.
func (h *Health) budgetBurn(st stream.IngestStats, records int64) (burn float64, dims int) {
	b := h.cfg.Budget
	if h.cfg.Mode != stream.ModeBudgeted {
		return 0, 0
	}
	acc := func(used, allowed float64) {
		dims++
		if f := used / allowed; f > burn {
			burn = f
		}
	}
	if b.MaxRejects > 0 {
		acc(float64(st.Rejected), float64(b.MaxRejects))
	}
	if b.MaxRejectRate > 0 {
		if den := records + st.Rejected; den > 0 {
			acc(float64(st.Rejected)/float64(den), b.MaxRejectRate)
		} else {
			dims++
		}
	}
	if b.MaxClamped > 0 {
		acc(float64(st.Clamped), float64(b.MaxClamped))
	}
	return burn, dims
}

// ruleBackpressure reports the parser's in-flight chunk depth against
// its window. Saturation is the design operating point under load, so
// this rule warns and never fails.
func (h *Health) ruleBackpressure() RuleResult {
	r := RuleResult{Rule: "backpressure", Status: "ok"}
	depth := h.reg.Gauge("weblog.chunks_in_flight").Value()
	window := int64(h.cfg.ChunkWindow)
	r.Detail = fmt.Sprintf("parse queue depth %d of window %d", depth, window)
	if depth >= window {
		r.Status = "warn"
		r.Detail = fmt.Sprintf("parse window saturated (depth %d of %d)", depth, window)
	}
	return r
}

// ruleFoldLag compares chunks parsed against chunks folded. The fold
// drains the parse window in order, so lag beyond the window means the
// fold stalled (or accounting broke): warn past the bound, fail past
// twice the bound.
func (h *Health) ruleFoldLag() RuleResult {
	r := RuleResult{Rule: "fold-lag", Status: "ok"}
	parsed := h.reg.Counter("weblog.chunks_parsed").Value()
	folded := h.reg.Counter("stream.chunks_folded").Value()
	lag := parsed - folded
	r.Detail = fmt.Sprintf("%d chunks parsed, %d folded (lag %d)", parsed, folded, lag)
	switch {
	case lag > 2*h.cfg.MaxFoldLag:
		r.Status = "fail"
		r.Detail = fmt.Sprintf("fold stalled: lag %d exceeds twice the bound %d", lag, h.cfg.MaxFoldLag)
	case lag > h.cfg.MaxFoldLag:
		r.Status = "warn"
		r.Detail = fmt.Sprintf("fold lagging: %d chunks behind (bound %d)", lag, h.cfg.MaxFoldLag)
	}
	return r
}

// ruleCheckpoint fails a checkpointing run whose last persisted
// checkpoint is older than the configured age — the signal that a
// crash now would replay an unbounded amount of input. Warns at half
// the age. Runs without checkpointing always pass.
func (h *Health) ruleCheckpoint(ready bool) RuleResult {
	r := RuleResult{Rule: "checkpoint", Status: "ok"}
	if !h.cfg.Checkpointing {
		r.Detail = "checkpointing disabled"
		return r
	}
	if !ready {
		r.Detail = "no runtime published yet"
		return r
	}
	age := h.clock.Now().Sub(h.holder.LastCheckpointAt())
	r.Detail = fmt.Sprintf("last checkpoint %s ago (max %s)", age.Round(time.Second), h.cfg.MaxCheckpointAge)
	switch {
	case age > h.cfg.MaxCheckpointAge:
		r.Status = "fail"
		r.Detail = fmt.Sprintf("checkpoint stale: %s since last persist (max %s)", age.Round(time.Second), h.cfg.MaxCheckpointAge)
	case age > h.cfg.MaxCheckpointAge/2:
		r.Status = "warn"
		r.Detail = fmt.Sprintf("checkpoint aging: %s since last persist (max %s)", age.Round(time.Second), h.cfg.MaxCheckpointAge)
	}
	return r
}

// ruleQuarantine bounds quarantine growth between the last two runtime
// publications: warn past the configured bytes/second, fail past twice
// it. Disabled (always ok) when no rate is configured.
func (h *Health) ruleQuarantine(cur PublishedRuntime, prev *PublishedRuntime, ready bool) RuleResult {
	r := RuleResult{Rule: "quarantine", Status: "ok"}
	if h.cfg.MaxQuarantineRate <= 0 {
		r.Detail = "no quarantine growth bound configured"
		return r
	}
	if !ready || prev == nil {
		r.Detail = "warming up (fewer than two publications)"
		return r
	}
	dt := cur.At.Sub(prev.At).Seconds()
	if dt <= 0 {
		r.Detail = "warming up (publications not yet time-separated)"
		return r
	}
	rate := float64(cur.Stats.QuarantineBytes-prev.Stats.QuarantineBytes) / dt
	r.Detail = fmt.Sprintf("quarantine growing at %.0f B/s (max %.0f)", rate, h.cfg.MaxQuarantineRate)
	switch {
	case rate > 2*h.cfg.MaxQuarantineRate:
		r.Status = "fail"
		r.Detail = fmt.Sprintf("quarantine flooding: %.0f B/s exceeds twice the bound %.0f B/s", rate, h.cfg.MaxQuarantineRate)
	case rate > h.cfg.MaxQuarantineRate:
		r.Status = "warn"
	}
	return r
}

// ruleSourceStaleness warns when any registered incomplete source has
// delivered nothing for strictly longer than the staleness bound —
// exactly at the bound is still fresh. Completed sources never age,
// and a draining intake is force-completing everything, so neither
// draws a warning. Staleness never fails: a silent source may simply
// be done without having said so.
func (h *Health) ruleSourceStaleness() RuleResult {
	r := RuleResult{Rule: "source-staleness", Status: "ok"}
	pub, ok := h.holder.LatestIntake()
	if !ok {
		r.Detail = "no intake published yet"
		return r
	}
	if pub.Stats.Draining {
		r.Detail = "draining"
		return r
	}
	now := h.clock.Now()
	stale, total := "", 0
	for _, src := range pub.Stats.Sources {
		if src.Complete {
			continue
		}
		total++
		if now.Sub(src.LastAt) > h.cfg.SourceStaleAfter {
			if stale != "" {
				stale += ", "
			}
			stale += src.Name
		}
	}
	r.Detail = fmt.Sprintf("%d incomplete sources, none stale (bound %s)", total, h.cfg.SourceStaleAfter)
	if stale != "" {
		r.Status = "warn"
		r.Detail = fmt.Sprintf("stale sources (silent > %s): %s", h.cfg.SourceStaleAfter, stale)
	}
	return r
}

// ruleIntakeBuffer reports the worst per-source intake buffer
// occupancy against the per-source cap: warn at or above the warn
// fraction, fail when any source's buffer is completely full —
// senders are being refused and the engine is not draining it.
func (h *Health) ruleIntakeBuffer() RuleResult {
	r := RuleResult{Rule: "intake-buffer", Status: "ok"}
	pub, ok := h.holder.LatestIntake()
	if !ok {
		r.Detail = "no intake published yet"
		return r
	}
	capB := pub.Stats.BufferCap
	if capB <= 0 {
		r.Detail = "no intake buffer bound configured"
		return r
	}
	var worst int64
	worstName := ""
	for _, src := range pub.Stats.Sources {
		if src.Buffered > worst {
			worst = src.Buffered
			worstName = src.Name
		}
	}
	frac := float64(worst) / float64(capB)
	r.Detail = fmt.Sprintf("worst source buffer %.0f%% of %d bytes", frac*100, capB)
	switch {
	case worst >= capB:
		r.Status = "fail"
		r.Detail = fmt.Sprintf("intake buffer full: source %s at %d of %d bytes", worstName, worst, capB)
	case frac >= intakeBufferWarnFraction:
		r.Status = "warn"
		r.Detail = fmt.Sprintf("intake buffer filling: source %s at %.0f%% of %d bytes", worstName, frac*100, capB)
	}
	return r
}

// ruleWALLag bounds journaled-but-unfolded intake bytes: warn past
// half the bound, fail past the bound — acknowledged durability is
// outrunning the fold, so a crash now replays that much journal.
func (h *Health) ruleWALLag() RuleResult {
	r := RuleResult{Rule: "wal-lag", Status: "ok"}
	pub, ok := h.holder.LatestWAL()
	if !ok {
		r.Detail = "no journal published yet"
		return r
	}
	lag, bound := pub.Stats.LagBytes, h.cfg.MaxWALLagBytes
	r.Detail = fmt.Sprintf("%d journaled bytes not yet folded (bound %d)", lag, bound)
	switch {
	case lag > bound:
		r.Status = "fail"
		r.Detail = fmt.Sprintf("journal lag %d bytes exceeds the bound %d: fold is not keeping up with acknowledged intake", lag, bound)
	case lag > bound/2:
		r.Status = "warn"
		r.Detail = fmt.Sprintf("journal lag %d bytes past half the bound %d", lag, bound)
	}
	return r
}

// ruleWALDisk reports the journal's on-disk footprint against its
// budget: warn at the warn fraction, fail once the journal sheds
// intake (budget exhausted or disk fault) — deliveries are being
// refused with 503 while the engine folds what it has.
func (h *Health) ruleWALDisk() RuleResult {
	r := RuleResult{Rule: "wal-disk", Status: "ok"}
	pub, ok := h.holder.LatestWAL()
	if !ok {
		r.Detail = "no journal published yet"
		return r
	}
	st := pub.Stats
	if st.Shedding {
		r.Status = "fail"
		r.Detail = "journal shedding intake: " + st.ShedReason
		return r
	}
	if st.DiskBudgetBytes <= 0 {
		r.Detail = fmt.Sprintf("journal at %d bytes on disk, no budget configured", st.DiskBytes)
		return r
	}
	frac := float64(st.DiskBytes) / float64(st.DiskBudgetBytes)
	r.Detail = fmt.Sprintf("journal at %.0f%% of %d-byte disk budget", frac*100, st.DiskBudgetBytes)
	if frac >= walDiskWarnFraction {
		r.Status = "warn"
		r.Detail = fmt.Sprintf("journal disk budget burning: %d of %d bytes (%.0f%%)", st.DiskBytes, st.DiskBudgetBytes, frac*100)
	}
	return r
}

// joinReasons renders the breach reasons as one detail line without
// pulling in strings for a single call site.
func joinReasons(reasons []string) string {
	out := ""
	for i, s := range reasons {
		if i > 0 {
			out += "; "
		}
		out += s
	}
	return out
}
