package telemetry_test

import (
	"strings"
	"testing"

	"fullweb/internal/obs"
	"fullweb/internal/telemetry"
)

// TestWALRuleOrder: with WAL set the report appends wal-lag and
// wal-disk after the intake rules; before the first journal
// publication both are ok.
func TestWALRuleOrder(t *testing.T) {
	clock := newSetClock(epoch)
	holder := telemetry.NewHolder(clock)
	h := telemetry.NewHealth(telemetry.HealthConfig{Intake: true, WAL: true}, holder, obs.NewRegistry(), clock)
	rep := h.Evaluate()
	want := []string{"ingest-budget", "backpressure", "fold-lag", "checkpoint", "quarantine", "source-staleness", "intake-buffer", "wal-lag", "wal-disk"}
	if len(rep.Rules) != len(want) {
		t.Fatalf("WAL report has %d rules, want %d", len(rep.Rules), len(want))
	}
	for i, name := range want {
		if rep.Rules[i].Rule != name {
			t.Errorf("rule %d = %q, want %q", i, rep.Rules[i].Rule, name)
		}
	}
	for _, name := range []string{"wal-lag", "wal-disk"} {
		if r := ruleByName(t, rep, name); r.Status != "ok" || !strings.Contains(r.Detail, "no journal published") {
			t.Errorf("%s before publication: %q (%s)", name, r.Status, r.Detail)
		}
	}
}

// TestWALLagBoundaries pins the lag rule on its thresholds: at half
// the bound still ok (strictly greater-than), past half warns, at the
// bound still warn, past the bound fails the report.
func TestWALLagBoundaries(t *testing.T) {
	const bound = 1000
	clock := newSetClock(epoch)
	holder := telemetry.NewHolder(clock)
	h := telemetry.NewHealth(telemetry.HealthConfig{WAL: true, MaxWALLagBytes: bound}, holder, obs.NewRegistry(), clock)

	eval := func(lag int64) telemetry.RuleResult {
		holder.PublishWAL(telemetry.WALStats{LagBytes: lag})
		return ruleByName(t, h.Evaluate(), "wal-lag")
	}
	if r := eval(bound / 2); r.Status != "ok" {
		t.Errorf("lag at half bound: %q (%s), want ok", r.Status, r.Detail)
	}
	if r := eval(bound/2 + 1); r.Status != "warn" {
		t.Errorf("lag past half bound: %q (%s), want warn", r.Status, r.Detail)
	}
	if r := eval(bound); r.Status != "warn" {
		t.Errorf("lag exactly at bound: %q (%s), want warn", r.Status, r.Detail)
	}
	if r := eval(bound + 1); r.Status != "fail" {
		t.Errorf("lag past bound: %q (%s), want fail", r.Status, r.Detail)
	}
	if rep := h.Evaluate(); rep.Healthy {
		t.Error("journal lag past the bound did not unhealth the report")
	}
}

// TestWALDiskBoundaries: no budget is ok at any size, 79% of budget
// ok, 80% warns, and a shedding journal fails regardless of footprint
// with the shed reason in the detail.
func TestWALDiskBoundaries(t *testing.T) {
	clock := newSetClock(epoch)
	holder := telemetry.NewHolder(clock)
	h := telemetry.NewHealth(telemetry.HealthConfig{WAL: true}, holder, obs.NewRegistry(), clock)

	eval := func(st telemetry.WALStats) telemetry.RuleResult {
		holder.PublishWAL(st)
		return ruleByName(t, h.Evaluate(), "wal-disk")
	}
	if r := eval(telemetry.WALStats{DiskBytes: 1 << 40}); r.Status != "ok" || !strings.Contains(r.Detail, "no budget") {
		t.Errorf("unbudgeted journal: %q (%s), want ok", r.Status, r.Detail)
	}
	if r := eval(telemetry.WALStats{DiskBytes: 79, DiskBudgetBytes: 100}); r.Status != "ok" {
		t.Errorf("79%% of budget: %q (%s), want ok", r.Status, r.Detail)
	}
	if r := eval(telemetry.WALStats{DiskBytes: 80, DiskBudgetBytes: 100}); r.Status != "warn" {
		t.Errorf("80%% of budget: %q (%s), want warn", r.Status, r.Detail)
	}
	shed := telemetry.WALStats{DiskBytes: 1, DiskBudgetBytes: 100, Shedding: true, ShedReason: "disk budget: exhausted"}
	if r := eval(shed); r.Status != "fail" || !strings.Contains(r.Detail, "disk budget: exhausted") {
		t.Errorf("shedding journal: %q (%s), want fail naming the reason", r.Status, r.Detail)
	}
	if rep := h.Evaluate(); rep.Healthy {
		t.Error("shedding journal did not unhealth the report")
	}
}

// TestWALPublicationSequencing: journal publications carry a
// monotonically increasing sequence and clock stamps, independent of
// the runtime and intake cells.
func TestWALPublicationSequencing(t *testing.T) {
	clock := newSetClock(epoch)
	holder := telemetry.NewHolder(clock)
	if _, ok := holder.LatestWAL(); ok {
		t.Fatal("fresh holder reports a journal publication")
	}
	holder.PublishWAL(telemetry.WALStats{JournaledBytes: 1})
	holder.PublishWAL(telemetry.WALStats{JournaledBytes: 2})
	pub, ok := holder.LatestWAL()
	if !ok || pub.Seq != 2 || pub.Stats.JournaledBytes != 2 || !pub.At.Equal(epoch) {
		t.Fatalf("publication = %+v, %v", pub, ok)
	}
}
