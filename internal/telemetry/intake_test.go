package telemetry_test

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"fullweb/internal/obs"
	"fullweb/internal/stream"
	"fullweb/internal/telemetry"
)

// intakeStats builds a two-source intake view with the given buffered
// bytes and last-delivery stamps.
func intakeStats(capB int64, buffered []int64, lastAt []time.Time, complete []bool) telemetry.IntakeStats {
	st := telemetry.IntakeStats{BufferCap: capB}
	for i := range buffered {
		st.Sources = append(st.Sources, telemetry.IntakeSource{
			Name:     string(rune('a' + i)),
			Buffered: buffered[i],
			LastAt:   lastAt[i],
			Complete: complete[i],
		})
	}
	return st
}

// TestIntakeRuleOrder: with Intake set the report appends exactly
// source-staleness and intake-buffer after the five engine rules, in
// that order; without it the report keeps the five-rule shape.
func TestIntakeRuleOrder(t *testing.T) {
	clock := newSetClock(epoch)
	holder := telemetry.NewHolder(clock)
	h := telemetry.NewHealth(telemetry.HealthConfig{Intake: true}, holder, obs.NewRegistry(), clock)
	rep := h.Evaluate()
	want := []string{"ingest-budget", "backpressure", "fold-lag", "checkpoint", "quarantine", "source-staleness", "intake-buffer"}
	if len(rep.Rules) != len(want) {
		t.Fatalf("intake report has %d rules, want %d", len(rep.Rules), len(want))
	}
	for i, name := range want {
		if rep.Rules[i].Rule != name {
			t.Errorf("rule %d = %q, want %q", i, rep.Rules[i].Rule, name)
		}
	}
	// Before any intake publication both rules are ok.
	for _, name := range []string{"source-staleness", "intake-buffer"} {
		if r := ruleByName(t, rep, name); r.Status != "ok" || !strings.Contains(r.Detail, "no intake published") {
			t.Errorf("%s before publication: %q (%s)", name, r.Status, r.Detail)
		}
	}
}

// TestSourceStalenessBoundaries pins the clock exactly on the
// staleness bound: at the bound a source is still fresh (the
// comparison is strictly greater-than), one nanosecond past it warns,
// and completed or draining sources never age.
func TestSourceStalenessBoundaries(t *testing.T) {
	const bound = 2 * time.Minute
	clock := newSetClock(epoch)
	holder := telemetry.NewHolder(clock)
	h := telemetry.NewHealth(telemetry.HealthConfig{Intake: true, SourceStaleAfter: bound}, holder, obs.NewRegistry(), clock)

	eval := func() telemetry.RuleResult {
		return ruleByName(t, h.Evaluate(), "source-staleness")
	}

	last := []time.Time{epoch, epoch}
	holder.PublishIntake(intakeStats(1<<20, []int64{0, 0}, last, []bool{false, false}))

	// Exactly at the bound: still fresh.
	clock.Set(epoch.Add(bound))
	if r := eval(); r.Status != "ok" {
		t.Errorf("exactly at bound: %q (%s), want ok", r.Status, r.Detail)
	}
	// One nanosecond past: warn, naming the silent sources.
	clock.Set(epoch.Add(bound + time.Nanosecond))
	if r := eval(); r.Status != "warn" || !strings.Contains(r.Detail, "a, b") {
		t.Errorf("past bound: %q (%s), want warn naming a, b", r.Status, r.Detail)
	}
	// Staleness never fails the report.
	if rep := h.Evaluate(); !rep.Healthy {
		t.Error("stale sources failed the report; staleness must only warn")
	}
	// A completed source stops aging.
	holder.PublishIntake(intakeStats(1<<20, []int64{0, 0}, last, []bool{true, false}))
	if r := eval(); r.Status != "warn" || strings.Contains(r.Detail, "a") && !strings.HasPrefix(r.Detail, "stale sources (silent > 2m0s): b") {
		t.Errorf("completed source still listed: %s", r.Detail)
	}
	// Draining: everything is being force-completed; no warning.
	st := intakeStats(1<<20, []int64{0, 0}, last, []bool{false, false})
	st.Draining = true
	holder.PublishIntake(st)
	if r := eval(); r.Status != "ok" || r.Detail != "draining" {
		t.Errorf("draining intake: %q (%s), want ok/draining", r.Status, r.Detail)
	}
}

// TestIntakeBufferBoundaries pins buffer occupancy exactly on the rule
// thresholds: 79% ok, 80% warn (>= warn fraction), full fail.
func TestIntakeBufferBoundaries(t *testing.T) {
	clock := newSetClock(epoch)
	holder := telemetry.NewHolder(clock)
	h := telemetry.NewHealth(telemetry.HealthConfig{Intake: true}, holder, obs.NewRegistry(), clock)
	const capB = 1000
	last := []time.Time{epoch, epoch}

	for _, tc := range []struct {
		name     string
		buffered int64
		status   string
		healthy  bool
	}{
		{"empty", 0, "ok", true},
		{"just-under-warn", 799, "ok", true},
		{"exactly-warn-fraction", 800, "warn", true},
		{"just-under-full", 999, "warn", true},
		{"exactly-full", 1000, "fail", false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// The worst source drives the rule; the other stays empty.
			holder.PublishIntake(intakeStats(capB, []int64{0, tc.buffered}, last, []bool{false, false}))
			rep := h.Evaluate()
			r := ruleByName(t, rep, "intake-buffer")
			if r.Status != tc.status {
				t.Errorf("buffered=%d: status %q (%s), want %q", tc.buffered, r.Status, r.Detail, tc.status)
			}
			if rep.Healthy != tc.healthy {
				t.Errorf("buffered=%d: healthy=%v, want %v", tc.buffered, rep.Healthy, tc.healthy)
			}
			if tc.status != "ok" && !strings.Contains(r.Detail, "b") {
				t.Errorf("detail does not name the worst source: %s", r.Detail)
			}
		})
	}
}

// TestIntakePublicationSequencing: intake publications are sequenced
// independently of the engine cells and survive concurrent publishers.
func TestIntakePublicationSequencing(t *testing.T) {
	clock := newSetClock(epoch)
	holder := telemetry.NewHolder(clock)
	if _, ok := holder.LatestIntake(); ok {
		t.Fatal("LatestIntake ok before any publication")
	}
	holder.PublishIntake(telemetry.IntakeStats{BufferCap: 1})
	holder.PublishIntake(telemetry.IntakeStats{BufferCap: 2})
	pub, ok := holder.LatestIntake()
	if !ok || pub.Seq != 2 || pub.Stats.BufferCap != 2 {
		t.Fatalf("intake publication = %+v ok=%v, want seq 2 cap 2", pub, ok)
	}
}

// TestReadyGate: a closed gate holds /readyz at 503 with the gate's
// reason even after the first runtime publication; once the gate
// opens, publication readiness applies as before.
func TestReadyGate(t *testing.T) {
	clock := newSetClock(epoch)
	holder := telemetry.NewHolder(clock)
	reg := obs.NewRegistry()
	health := telemetry.NewHealth(telemetry.HealthConfig{}, holder, reg, clock)
	srv := telemetry.NewServer(reg, holder, health)
	open := false
	srv.SetReadyGate(func() (bool, string) {
		if !open {
			return false, "intake listeners not bound"
		}
		return true, ""
	})
	handler := srv.Handler()

	holder.PublishRuntime(stream.RuntimeStats{Records: 7})
	rec := get(handler, http.MethodGet, "/readyz")
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "intake listeners not bound") {
		t.Fatalf("closed gate readyz = %d %q, want 503 with gate reason", rec.Code, rec.Body.String())
	}

	open = true
	rec = get(handler, http.MethodGet, "/readyz")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"ready": true`) {
		t.Fatalf("open gate readyz = %d %q, want 200 ready", rec.Code, rec.Body.String())
	}
}
