package telemetry_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fullweb/internal/obs"
	"fullweb/internal/stream"
	"fullweb/internal/telemetry"
)

// setClock is a settable obs.Clock: unlike obs.ManualClock it does not
// auto-advance, so a test pins publication and evaluation times
// exactly on the health-rule boundaries.
type setClock struct {
	mu  sync.Mutex
	now time.Time
}

func newSetClock(t0 time.Time) *setClock { return &setClock{now: t0} }

func (c *setClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *setClock) Set(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = t
}

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// ruleByName pulls one rule out of a health report.
func ruleByName(t *testing.T, rep telemetry.HealthReport, name string) telemetry.RuleResult {
	t.Helper()
	for _, r := range rep.Rules {
		if r.Rule == name {
			return r
		}
	}
	t.Fatalf("no rule %q in report %+v", name, rep)
	return telemetry.RuleResult{}
}

func TestHolderSequencing(t *testing.T) {
	clock := newSetClock(epoch)
	h := telemetry.NewHolder(clock)

	if _, _, ok := h.LatestRuntime(); ok {
		t.Fatal("LatestRuntime ok before any publication")
	}
	if _, ok := h.LatestSnapshot(); ok {
		t.Fatal("LatestSnapshot ok before any publication")
	}
	if got := h.LastCheckpointAt(); !got.Equal(epoch) {
		t.Fatalf("LastCheckpointAt before publications = %v, want holder start %v", got, epoch)
	}

	h.PublishRuntime(stream.RuntimeStats{Records: 10})
	cur, prev, ok := h.LatestRuntime()
	if !ok || cur.Seq != 1 || prev != nil {
		t.Fatalf("first publication: seq=%d prev=%v ok=%v", cur.Seq, prev, ok)
	}
	clock.Set(epoch.Add(time.Minute))
	h.PublishRuntime(stream.RuntimeStats{Records: 25})
	cur, prev, _ = h.LatestRuntime()
	if cur.Seq != 2 || prev == nil || prev.Seq != 1 || prev.Stats.Records != 10 {
		t.Fatalf("second publication: cur=%+v prev=%+v", cur, prev)
	}
	if cur.Stats.Records != 25 {
		t.Fatalf("cur records = %d, want 25", cur.Stats.Records)
	}

	h.PublishSnapshot(&stream.Snapshot{Records: 25})
	snap, ok := h.LatestSnapshot()
	if !ok || snap.Seq != 1 || snap.Snapshot.Records != 25 {
		t.Fatalf("snapshot publication: %+v ok=%v", snap, ok)
	}
}

// TestHolderCheckpointStamps: the holder stamps the checkpoint
// reference point only when the counter increases, and treats a
// resumed run's pre-existing checkpoints as fresh at first publication.
func TestHolderCheckpointStamps(t *testing.T) {
	clock := newSetClock(epoch)
	h := telemetry.NewHolder(clock)

	clock.Set(epoch.Add(time.Minute))
	h.PublishRuntime(stream.RuntimeStats{})
	if got := h.LastCheckpointAt(); !got.Equal(epoch) {
		t.Fatalf("no checkpoints yet: LastCheckpointAt = %v, want start %v", got, epoch)
	}
	clock.Set(epoch.Add(2 * time.Minute))
	h.PublishRuntime(stream.RuntimeStats{Checkpoints: 1})
	if got, want := h.LastCheckpointAt(), epoch.Add(2*time.Minute); !got.Equal(want) {
		t.Fatalf("checkpoint increase not stamped: %v, want %v", got, want)
	}
	clock.Set(epoch.Add(3 * time.Minute))
	h.PublishRuntime(stream.RuntimeStats{Checkpoints: 1})
	if got, want := h.LastCheckpointAt(), epoch.Add(2*time.Minute); !got.Equal(want) {
		t.Fatalf("unchanged count restamped: %v, want %v", got, want)
	}

	// Resumed run: first publication already carries checkpoints.
	resumed := telemetry.NewHolder(clock)
	clock.Set(epoch.Add(10 * time.Minute))
	resumed.PublishRuntime(stream.RuntimeStats{Checkpoints: 7})
	if got, want := resumed.LastCheckpointAt(), epoch.Add(10*time.Minute); !got.Equal(want) {
		t.Fatalf("resumed run not stamped fresh: %v, want %v", got, want)
	}
}

// TestHealthBudgetBoundaries pins the ingest-budget rule's edge: the
// engine's breach comparisons are strictly greater-than, so a budget
// exactly exhausted is a warn, one past it a fail.
func TestHealthBudgetBoundaries(t *testing.T) {
	cfg := telemetry.HealthConfig{
		Mode:   stream.ModeBudgeted,
		Budget: stream.Budget{MaxRejects: 10},
	}
	cases := []struct {
		name       string
		rejected   int64
		status     string
		healthy    bool
		detailPart string
	}{
		{"well under budget", 5, "ok", true, "burn 50%"},
		{"warn fraction", 8, "warn", true, "burn 80%"},
		{"exactly exhausted", 10, "warn", true, "exactly exhausted"},
		{"breached", 11, "fail", false, "error budget breached"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clock := newSetClock(epoch)
			holder := telemetry.NewHolder(clock)
			holder.PublishRuntime(stream.RuntimeStats{
				Records: 1000,
				Ingest:  stream.IngestStats{Rejected: tc.rejected, Malformed: tc.rejected},
			})
			h := telemetry.NewHealth(cfg, holder, obs.NewRegistry(), clock)
			rep := h.Evaluate()
			r := ruleByName(t, rep, "ingest-budget")
			if r.Status != tc.status {
				t.Errorf("status = %q, want %q (detail %q)", r.Status, tc.status, r.Detail)
			}
			if rep.Healthy != tc.healthy {
				t.Errorf("Healthy = %v, want %v", rep.Healthy, tc.healthy)
			}
			if !strings.Contains(r.Detail, tc.detailPart) {
				t.Errorf("detail %q missing %q", r.Detail, tc.detailPart)
			}
		})
	}
}

// TestHealthZeroRecordRun: before the engine publishes anything the
// process is unready but healthy — no rule may fail on an empty run.
func TestHealthZeroRecordRun(t *testing.T) {
	clock := newSetClock(epoch)
	holder := telemetry.NewHolder(clock)
	cfg := telemetry.HealthConfig{
		Mode:          stream.ModeBudgeted,
		Budget:        stream.Budget{MaxRejects: 1},
		Checkpointing: true,
	}
	h := telemetry.NewHealth(cfg, holder, obs.NewRegistry(), clock)
	clock.Set(epoch.Add(24 * time.Hour)) // way past any staleness bound
	rep := h.Evaluate()
	if rep.Ready {
		t.Error("Ready before first publication")
	}
	if !rep.Healthy {
		t.Errorf("zero-record run unhealthy: %+v", rep.Rules)
	}
	for _, name := range []string{"ingest-budget", "checkpoint"} {
		if r := ruleByName(t, rep, name); r.Detail != "no runtime published yet" {
			t.Errorf("%s detail = %q, want warm-up message", name, r.Detail)
		}
	}

	// A published zero-record run becomes ready and stays healthy
	// (fresh holder so the staleness clock starts at the publication).
	clock.Set(epoch)
	holder2 := telemetry.NewHolder(clock)
	holder2.PublishRuntime(stream.RuntimeStats{})
	h2 := telemetry.NewHealth(cfg, holder2, obs.NewRegistry(), clock)
	rep = h2.Evaluate()
	if !rep.Ready || !rep.Healthy {
		t.Errorf("published empty run: Ready=%v Healthy=%v %+v", rep.Ready, rep.Healthy, rep.Rules)
	}
}

// TestHealthCheckpointStaleness drives the staleness rule across its
// warn (half the max age) and fail (past the max age) boundaries with
// a pinned clock.
func TestHealthCheckpointStaleness(t *testing.T) {
	clock := newSetClock(epoch)
	holder := telemetry.NewHolder(clock)
	cfg := telemetry.HealthConfig{Checkpointing: true} // default max age 10m
	h := telemetry.NewHealth(cfg, holder, obs.NewRegistry(), clock)

	holder.PublishRuntime(stream.RuntimeStats{Checkpoints: 1})
	steps := []struct {
		age    time.Duration
		status string
	}{
		{4 * time.Minute, "ok"},
		{5 * time.Minute, "ok"}, // exactly half: warn is strictly greater-than
		{6 * time.Minute, "warn"},
		{10 * time.Minute, "warn"}, // exactly max: fail is strictly greater-than
		{11 * time.Minute, "fail"},
	}
	for _, s := range steps {
		clock.Set(epoch.Add(s.age))
		rep := h.Evaluate()
		r := ruleByName(t, rep, "checkpoint")
		if r.Status != s.status {
			t.Errorf("age %v: status %q, want %q (%s)", s.age, r.Status, s.status, r.Detail)
		}
		if wantHealthy := s.status != "fail"; rep.Healthy != wantHealthy {
			t.Errorf("age %v: Healthy = %v, want %v", s.age, rep.Healthy, wantHealthy)
		}
	}

	// A fresh checkpoint publication recovers the rule.
	holder.PublishRuntime(stream.RuntimeStats{Checkpoints: 2})
	if r := ruleByName(t, h.Evaluate(), "checkpoint"); r.Status != "ok" {
		t.Errorf("after fresh checkpoint: %q (%s)", r.Status, r.Detail)
	}

	// Non-checkpointing runs never trip the rule.
	hOff := telemetry.NewHealth(telemetry.HealthConfig{}, holder, obs.NewRegistry(), clock)
	clock.Set(epoch.Add(48 * time.Hour))
	if r := ruleByName(t, hOff.Evaluate(), "checkpoint"); r.Status != "ok" {
		t.Errorf("checkpointing disabled but rule tripped: %q", r.Status)
	}
}

// TestHealthFoldLagAndBackpressure drives the parser-side rules
// straight through the registry instruments they read.
func TestHealthFoldLagAndBackpressure(t *testing.T) {
	clock := newSetClock(epoch)
	holder := telemetry.NewHolder(clock)
	reg := obs.NewRegistry()
	cfg := telemetry.HealthConfig{ChunkWindow: 4} // fold-lag bound defaults to the window
	h := telemetry.NewHealth(cfg, holder, reg, clock)

	parsed := reg.Counter("weblog.chunks_parsed")
	folded := reg.Counter("stream.chunks_folded")
	inFlight := reg.Gauge("weblog.chunks_in_flight")

	if r := ruleByName(t, h.Evaluate(), "fold-lag"); r.Status != "ok" {
		t.Errorf("idle fold-lag: %q", r.Status)
	}
	parsed.Add(10)
	folded.Add(6) // lag 4 == bound: ok (strictly greater-than)
	if r := ruleByName(t, h.Evaluate(), "fold-lag"); r.Status != "ok" {
		t.Errorf("lag at bound: %q (%s)", r.Status, r.Detail)
	}
	parsed.Add(1) // lag 5 > 4: warn
	if r := ruleByName(t, h.Evaluate(), "fold-lag"); r.Status != "warn" {
		t.Errorf("lag past bound: %q (%s)", r.Status, r.Detail)
	}
	parsed.Add(4) // lag 9 > 8 = 2*bound: fail
	rep := h.Evaluate()
	if r := ruleByName(t, rep, "fold-lag"); r.Status != "fail" || rep.Healthy {
		t.Errorf("lag past twice the bound: %q Healthy=%v", r.Status, rep.Healthy)
	}

	inFlight.Set(3)
	if r := ruleByName(t, h.Evaluate(), "backpressure"); r.Status != "ok" {
		t.Errorf("window not saturated: %q", r.Status)
	}
	inFlight.Set(4)
	rep = h.Evaluate()
	r := ruleByName(t, rep, "backpressure")
	if r.Status != "warn" {
		t.Errorf("window saturated: %q, want warn", r.Status)
	}
	// Saturation is the operating point under load — warn never fails
	// the process on its own (fold-lag is still failing here, so assert
	// on the rule, not the report).
	if strings.Contains(r.Status, "fail") {
		t.Errorf("backpressure must never fail: %q", r.Status)
	}
}

// TestHealthQuarantineRate differences quarantine bytes across the two
// most recent publications.
func TestHealthQuarantineRate(t *testing.T) {
	clock := newSetClock(epoch)
	holder := telemetry.NewHolder(clock)
	cfg := telemetry.HealthConfig{MaxQuarantineRate: 100} // bytes/second
	h := telemetry.NewHealth(cfg, holder, obs.NewRegistry(), clock)

	holder.PublishRuntime(stream.RuntimeStats{QuarantineBytes: 0})
	if r := ruleByName(t, h.Evaluate(), "quarantine"); r.Status != "ok" || !strings.Contains(r.Detail, "warming up") {
		t.Errorf("single publication: %q (%s)", r.Status, r.Detail)
	}

	cases := []struct {
		name   string
		bytes  int64 // growth over 10 seconds
		status string
	}{
		{"under bound", 500, "ok"},   // 50 B/s
		{"at bound", 1000, "ok"},     // 100 B/s, strictly greater-than
		{"past bound", 1500, "warn"}, // 150 B/s
		{"past twice", 2500, "fail"}, // 250 B/s
	}
	base := int64(0)
	at := epoch
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			at = at.Add(10 * time.Second)
			clock.Set(at)
			base += tc.bytes
			holder.PublishRuntime(stream.RuntimeStats{QuarantineBytes: base})
			rep := h.Evaluate()
			r := ruleByName(t, rep, "quarantine")
			if r.Status != tc.status {
				t.Errorf("status = %q, want %q (%s)", r.Status, tc.status, r.Detail)
			}
			if wantHealthy := tc.status != "fail"; rep.Healthy != wantHealthy {
				t.Errorf("Healthy = %v, want %v", rep.Healthy, wantHealthy)
			}
		})
	}

	// No bound configured: rule is disabled.
	hOff := telemetry.NewHealth(telemetry.HealthConfig{}, holder, obs.NewRegistry(), clock)
	if r := ruleByName(t, hOff.Evaluate(), "quarantine"); r.Status != "ok" || !strings.Contains(r.Detail, "no quarantine growth bound") {
		t.Errorf("unbounded quarantine rule: %q (%s)", r.Status, r.Detail)
	}
}

// newTestServer wires a full holder+health+server stack on a pinned
// clock and returns the pieces.
func newTestServer(t *testing.T, cfg telemetry.HealthConfig) (*telemetry.Holder, *setClock, http.Handler) {
	t.Helper()
	clock := newSetClock(epoch)
	holder := telemetry.NewHolder(clock)
	reg := obs.NewRegistry()
	health := telemetry.NewHealth(cfg, holder, reg, clock)
	srv := telemetry.NewServer(reg, holder, health)
	return holder, clock, srv.Handler()
}

func get(h http.Handler, method, path string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(method, path, nil))
	return rec
}

func TestServerEndpoints(t *testing.T) {
	holder, _, handler := newTestServer(t, telemetry.HealthConfig{})

	// Read-only: writes are 405 with an Allow header.
	rec := get(handler, http.MethodPost, "/metrics")
	if rec.Code != http.StatusMethodNotAllowed || rec.Header().Get("Allow") != "GET, HEAD" {
		t.Errorf("POST /metrics: code=%d Allow=%q", rec.Code, rec.Header().Get("Allow"))
	}

	// /metrics is a valid (possibly empty) Prometheus exposition.
	rec = get(handler, http.MethodGet, "/metrics")
	if rec.Code != http.StatusOK {
		t.Errorf("GET /metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("metrics content type %q", ct)
	}

	// The handler's own hit counter shows up on the next scrape.
	rec = get(handler, http.MethodGet, "/metrics")
	if body := rec.Body.String(); !strings.Contains(body, `fullweb_telemetry_http_requests{path="/metrics"}`) {
		t.Errorf("second scrape missing self-counter:\n%s", body)
	}

	// /snapshot is 503 until the engine publishes one.
	rec = get(handler, http.MethodGet, "/snapshot")
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("GET /snapshot before publish: %d", rec.Code)
	}
	holder.PublishSnapshot(&stream.Snapshot{Records: 42, Final: true})
	rec = get(handler, http.MethodGet, "/snapshot")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /snapshot after publish: %d", rec.Code)
	}
	var snap telemetry.PublishedSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot body not JSON: %v", err)
	}
	if snap.Seq != 1 || snap.Snapshot.Records != 42 || !snap.Snapshot.Final {
		t.Errorf("snapshot body %+v", snap)
	}

	// /readyz flips at the first runtime publication.
	rec = get(handler, http.MethodGet, "/readyz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("GET /readyz before publish: %d", rec.Code)
	}
	holder.PublishRuntime(stream.RuntimeStats{Records: 42})
	rec = get(handler, http.MethodGet, "/readyz")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"records": 42`) {
		t.Errorf("GET /readyz after publish: %d %s", rec.Code, rec.Body.String())
	}

	// /healthz with no failing rules.
	rec = get(handler, http.MethodGet, "/healthz")
	if rec.Code != http.StatusOK {
		t.Errorf("GET /healthz: %d %s", rec.Code, rec.Body.String())
	}
	var rep telemetry.HealthReport
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatalf("healthz body not JSON: %v", err)
	}
	if !rep.Healthy || len(rep.Rules) != 5 {
		t.Errorf("healthz report %+v", rep)
	}

	// The index answers exactly "/": anything else is 404 — including
	// the pprof tree, which lives on its own mux (obs.PprofMux).
	if rec = get(handler, http.MethodGet, "/"); rec.Code != http.StatusOK {
		t.Errorf("GET /: %d", rec.Code)
	}
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap", "/nope"} {
		if rec = get(handler, http.MethodGet, path); rec.Code != http.StatusNotFound {
			t.Errorf("GET %s: %d, want 404", path, rec.Code)
		}
	}
}

// TestServerHealthz503 wires a failing rule end to end: a breached
// error budget must turn /healthz into a 503.
func TestServerHealthz503(t *testing.T) {
	cfg := telemetry.HealthConfig{
		Mode:   stream.ModeBudgeted,
		Budget: stream.Budget{MaxRejects: 1},
	}
	holder, _, handler := newTestServer(t, cfg)
	holder.PublishRuntime(stream.RuntimeStats{
		Records: 100,
		Ingest:  stream.IngestStats{Rejected: 2, Malformed: 2},
	})
	rec := get(handler, http.MethodGet, "/healthz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("GET /healthz with breached budget: %d", rec.Code)
	}
	var rep telemetry.HealthReport
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Healthy {
		t.Error("report claims healthy under a breached budget")
	}
	if r := ruleByName(t, rep, "ingest-budget"); r.Status != "fail" {
		t.Errorf("ingest-budget %q, want fail", r.Status)
	}
}

// TestVerdict covers the comma-list rendering.
func TestVerdict(t *testing.T) {
	cases := []struct {
		st   stream.IngestStats
		want string
	}{
		{stream.IngestStats{}, "ok"},
		{stream.IngestStats{Degraded: true}, "degraded"},
		{stream.IngestStats{Truncated: true}, "truncated"},
		{stream.IngestStats{Degraded: true, Truncated: true}, "degraded,truncated"},
	}
	for _, tc := range cases {
		if got := telemetry.Verdict(tc.st); got != tc.want {
			t.Errorf("Verdict(%+v) = %q, want %q", tc.st, got, tc.want)
		}
	}
}
