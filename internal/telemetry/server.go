package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"

	"fullweb/internal/obs"
)

// Server is the read-only telemetry HTTP service behind `fullweb
// stream -listen`. Endpoints:
//
//	/metrics   Prometheus text exposition of the obs registry
//	/snapshot  latest published trace-time snapshot, JSON
//	/healthz   health-rule report; 503 when any rule fails
//	/readyz    200 once the engine has published a runtime view
//
// Every endpoint is GET/HEAD only and reads exclusively from the
// copy-on-publish holder and the (atomic) registry instruments — the
// mux never touches live engine state. The pprof surface lives on its
// own mux (obs.PprofMux); this mux deliberately knows nothing about
// /debug/pprof/.
type Server struct {
	handler http.Handler
	srv     *http.Server
	// gate is the optional extra readiness condition (serve mode:
	// intake listeners bound). Set via SetReadyGate before Serve; nil
	// means first-publication readiness alone.
	gate func() (bool, string)
}

// NewServer wires the endpoints. reg may be nil (the /metrics body is
// then an empty exposition); holder and health must be non-nil.
func NewServer(reg *obs.Registry, holder *Holder, health *Health) *Server {
	s := &Server{}
	mux := http.NewServeMux()
	handle := func(path string, fn http.HandlerFunc) {
		hits := reg.Counter(obs.LabeledName("telemetry.http_requests", "path", path))
		mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodGet && r.Method != http.MethodHead {
				w.Header().Set("Allow", "GET, HEAD")
				http.Error(w, "read-only telemetry endpoint", http.StatusMethodNotAllowed)
				return
			}
			hits.Inc()
			fn(w, r)
		})
	}

	handle("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.Snapshot().WritePrometheus(w)
	})

	handle("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		snap, ok := holder.LatestSnapshot()
		if !ok {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{
				"error": "no snapshot published yet",
			})
			return
		}
		writeJSON(w, http.StatusOK, snap)
	})

	handle("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		rep := health.Evaluate()
		code := http.StatusOK
		if !rep.Healthy {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, rep)
	})

	handle("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		// The gate runs first: in serve mode readiness requires the
		// intake listeners bound AND the first engine publication, so an
		// unbound intake reports not-ready even after a publication
		// (DESIGN.md §15).
		if s.gate != nil {
			if ok, reason := s.gate(); !ok {
				writeJSON(w, http.StatusServiceUnavailable, map[string]any{
					"ready":  false,
					"reason": reason,
				})
				return
			}
		}
		cur, _, ok := holder.LatestRuntime()
		if !ok {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"ready":  false,
				"reason": "no runtime published yet",
			})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"ready":   true,
			"seq":     cur.Seq,
			"records": cur.Stats.Records,
		})
	})

	handle("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "fullweb stream telemetry")
		fmt.Fprintln(w, "  /metrics   Prometheus text exposition")
		fmt.Fprintln(w, "  /snapshot  latest trace-time snapshot (JSON)")
		fmt.Fprintln(w, "  /healthz   health rules (503 on failure)")
		fmt.Fprintln(w, "  /readyz    readiness (503 until first publication)")
	})

	s.handler = mux
	return s
}

// Handler exposes the mux for in-process tests.
func (s *Server) Handler() http.Handler { return s.handler }

// SetReadyGate installs an extra readiness condition consulted before
// the first-publication check; reason is reported in the 503 body when
// the gate is closed. Must be called before Serve (the field is read
// without synchronization by handler goroutines).
func (s *Server) SetReadyGate(gate func() (bool, string)) { s.gate = gate }

// Serve starts serving on ln in the background. The goroutine exits
// when the listener closes (via Close or externally).
func (s *Server) Serve(ln net.Listener) {
	s.srv = &http.Server{Handler: s.handler}
	srv := s.srv
	//lint:allow rawgo telemetry server lifecycle, not an analysis fan-out; one goroutine that dies with the listener
	go func() { _ = srv.Serve(ln) }()
}

// Close shuts the server down immediately (in-flight scrapes are
// aborted; the run's output is already on stdout by then).
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

// writeJSON writes one indented JSON body with the given status.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
