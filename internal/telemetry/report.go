package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"fullweb/internal/faultpoint"
	"fullweb/internal/obs"
	"fullweb/internal/stream"
)

// Run-report format identity. The report is self-describing: a
// consumer checks Format and Version before reading anything else.
const (
	ReportFormat  = "fullweb-run-report"
	ReportVersion = 1
)

// ReportTotals are the run's headline totals.
type ReportTotals struct {
	Records     int64   `json:"records"`
	Sessions    int64   `json:"sessions"`
	Bytes       int64   `json:"bytes"`
	SpanSeconds float64 `json:"span_seconds"`
}

// ReportCharacteristic is one intra-session characteristic's final
// summary in a run report — the shared shape both front ends emit
// (stream fills the quantile fields, analyze the table-derived ones).
type ReportCharacteristic struct {
	Name   string  `json:"name"`
	N      int64   `json:"n"`
	Mean   float64 `json:"mean,omitempty"`
	StdDev float64 `json:"std_dev,omitempty"`
	P50    float64 `json:"p50,omitempty"`
	P90    float64 `json:"p90,omitempty"`
	P99    float64 `json:"p99,omitempty"`
	// Hill tail state: HillOK means the estimator ran; Stable mirrors
	// the "NS" read-off; Alpha is the tail index when stable.
	HillOK     bool    `json:"hill_ok"`
	HillStable bool    `json:"hill_stable"`
	HillAlpha  float64 `json:"hill_alpha,omitempty"`
}

// RunReport is the self-describing end-of-run JSON artifact both
// `fullweb analyze -report` and `fullweb stream -report` emit: the
// config fingerprint, input identity, totals, ingest verdict,
// fault-site stats, final characteristics and the full obs metrics
// snapshot. The report carries wall-clock-derived observability data
// (durations in the obs histograms), so unlike stdout it is NOT part
// of the byte-identical determinism contract.
type RunReport struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	// Tool is the emitting subcommand ("stream" or "analyze").
	Tool string `json:"tool"`
	// Inputs lists the log paths in the order they were read.
	Inputs []string `json:"inputs"`
	// Config is the run's configuration record — for stream, the
	// resume-compatibility fingerprint (stream.ConfigFingerprint).
	Config any `json:"config"`
	// Totals, ingest accounting and the resulting verdict ("ok",
	// "degraded" or "truncated,degraded"-style comma list).
	Totals  ReportTotals       `json:"totals"`
	Ingest  stream.IngestStats `json:"ingest"`
	Verdict string             `json:"verdict"`
	// Snapshots is the number of snapshots emitted (stream only).
	Snapshots int64 `json:"snapshots,omitempty"`
	// Characteristics holds the final per-characteristic summaries in
	// the fixed core.AllCharacteristics order.
	Characteristics []ReportCharacteristic `json:"characteristics"`
	// Faults lists every armed fault site's hit/fire counts (empty
	// when no faults were injected).
	Faults []faultpoint.SiteStats `json:"faults,omitempty"`
	// WhatIf is the serve-mode end-of-run capacity sweep (the
	// what-if answers at the standard capacity factors), absent for
	// other tools.
	WhatIf any `json:"whatif,omitempty"`
	// WAL is the serve-mode journal's final published state (set by
	// cmd/fullweb when serve runs with -wal). Operational accounting
	// only — never part of the analysis output.
	WAL any `json:"wal,omitempty"`
	// Obs is the final metrics snapshot (the -metrics payload inline).
	Obs obs.Snapshot `json:"obs"`
}

// Verdict renders the ingest verdict string: "ok", or a comma list of
// "degraded" and "truncated".
func Verdict(st stream.IngestStats) string {
	switch {
	case st.Degraded && st.Truncated:
		return "degraded,truncated"
	case st.Degraded:
		return "degraded"
	case st.Truncated:
		return "truncated"
	default:
		return "ok"
	}
}

// StreamReportParts extracts the totals, characteristics and verdict
// of a final stream snapshot for a run report.
func StreamReportParts(final *stream.Snapshot) (ReportTotals, []ReportCharacteristic, string) {
	t := ReportTotals{
		Records:     final.Records,
		Sessions:    final.SessionsClosed + final.SessionsActive,
		Bytes:       final.Bytes,
		SpanSeconds: final.Span.Seconds(),
	}
	chars := make([]ReportCharacteristic, 0, len(final.Chars))
	for _, c := range final.Chars {
		chars = append(chars, ReportCharacteristic{
			Name:       c.Name,
			N:          c.N,
			Mean:       c.Mean,
			StdDev:     c.StdDev,
			P50:        c.P50,
			P90:        c.P90,
			P99:        c.P99,
			HillOK:     c.HillOK,
			HillStable: c.HillStable,
			HillAlpha:  c.HillAlpha,
		})
	}
	return t, chars, Verdict(final.Ingest)
}

// Write serializes the report with indentation and a trailing newline.
func (r *RunReport) Write(w io.Writer) error {
	r.Format = ReportFormat
	r.Version = ReportVersion
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path (truncating any existing file).
func (r *RunReport) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: creating run report: %w", err)
	}
	if err := r.Write(f); err != nil {
		f.Close()
		return fmt.Errorf("telemetry: writing run report: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("telemetry: closing run report: %w", err)
	}
	return nil
}
