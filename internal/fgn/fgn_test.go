package fgn

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fullweb/internal/stats"
)

func TestAutocovarianceBasics(t *testing.T) {
	if got := Autocovariance(0.8, 0); got != 1 {
		t.Fatalf("gamma(0) = %v, want 1", got)
	}
	// White noise (H = 0.5) has zero autocovariance at all nonzero lags.
	for k := 1; k <= 10; k++ {
		if got := Autocovariance(0.5, k); math.Abs(got) > 1e-12 {
			t.Errorf("H=0.5 gamma(%d) = %v, want 0", k, got)
		}
	}
	// LRD: positive, slowly decaying covariances for H > 0.5.
	prev := math.Inf(1)
	for k := 1; k <= 100; k++ {
		g := Autocovariance(0.85, k)
		if g <= 0 {
			t.Fatalf("H=0.85 gamma(%d) = %v, want positive", k, g)
		}
		if g >= prev {
			t.Fatalf("H=0.85 gamma(%d) = %v not decreasing (prev %v)", k, g, prev)
		}
		prev = g
	}
	// Symmetry in lag.
	if Autocovariance(0.7, 5) != Autocovariance(0.7, -5) {
		t.Error("autocovariance should be symmetric in lag")
	}
}

func TestAutocovarianceAsymptoticDecay(t *testing.T) {
	// gamma(k) ~ H(2H-1) k^{2H-2} for large k.
	h := 0.8
	for _, k := range []int{100, 1000} {
		got := Autocovariance(h, k)
		want := h * (2*h - 1) * math.Pow(float64(k), 2*h-2)
		if math.Abs(got-want)/want > 0.01 {
			t.Errorf("gamma(%d) = %v, asymptotic %v", k, got, want)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, h := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		if _, err := Generate(rng, h, 100); !errors.Is(err, ErrHurst) {
			t.Errorf("Generate(h=%v) error = %v, want ErrHurst", h, err)
		}
	}
	if _, err := Generate(rng, 0.7, 0); !errors.Is(err, ErrLength) {
		t.Error("n=0 should return ErrLength")
	}
	if _, err := Generate(nil, 0.7, 10); err == nil {
		t.Error("nil rng should error")
	}
}

func TestGenerateMomentsAndLength(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, h := range []float64{0.5, 0.7, 0.9} {
		x, err := Generate(rng, h, 1<<15)
		if err != nil {
			t.Fatal(err)
		}
		if len(x) != 1<<15 {
			t.Fatalf("length %d, want %d", len(x), 1<<15)
		}
		m, _ := stats.Mean(x)
		v, _ := stats.Variance(x)
		// The sample mean of fGn has standard deviation ~ n^{H-1}, which
		// converges very slowly for H near 1; use a 4-sigma band.
		meanSD := math.Pow(float64(len(x)), h-1)
		if math.Abs(m) > 4*meanSD {
			t.Errorf("H=%v: sample mean %v beyond 4*%v", h, m, meanSD)
		}
		if math.Abs(v-1) > 0.15 {
			t.Errorf("H=%v: sample variance %v too far from 1", h, v)
		}
	}
}

func TestGenerateACFMatchesTheory(t *testing.T) {
	// Average the empirical ACF over several independent replications and
	// compare with the theoretical fGn autocovariance.
	const (
		h    = 0.8
		n    = 1 << 14
		reps = 8
		lags = 20
	)
	rng := rand.New(rand.NewSource(3))
	avg := make([]float64, lags+1)
	for r := 0; r < reps; r++ {
		x, err := Generate(rng, h, n)
		if err != nil {
			t.Fatal(err)
		}
		acf, err := stats.AutocorrelationFFT(x, lags)
		if err != nil {
			t.Fatal(err)
		}
		for k := range avg {
			avg[k] += acf[k] / reps
		}
	}
	for k := 1; k <= lags; k++ {
		want := Autocovariance(h, k) // unit variance: autocorrelation == autocovariance
		if math.Abs(avg[k]-want) > 0.03 {
			t.Errorf("lag %d: empirical acf %v, theory %v", k, avg[k], want)
		}
	}
}

func TestGenerateWhiteNoiseUncorrelated(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, err := Generate(rng, 0.5, 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	acf, err := stats.AutocorrelationFFT(x, 5)
	if err != nil {
		t.Fatal(err)
	}
	bound := 4 / math.Sqrt(float64(len(x)))
	for k := 1; k <= 5; k++ {
		if math.Abs(acf[k]) > bound {
			t.Errorf("H=0.5 acf[%d] = %v beyond %v", k, acf[k], bound)
		}
	}
}

func TestGenerateAggregationVarianceScaling(t *testing.T) {
	// For self-similar increments, Var(X^{(m)}) ~ m^{2H-2}. Check the
	// ratio across one decade of aggregation.
	const (
		h = 0.85
		n = 1 << 17
	)
	rng := rand.New(rand.NewSource(5))
	x, err := Generate(rng, h, n)
	if err != nil {
		t.Fatal(err)
	}
	varAt := func(m int) float64 {
		agg := make([]float64, len(x)/m)
		for i := range agg {
			s := 0.0
			for j := 0; j < m; j++ {
				s += x[i*m+j]
			}
			agg[i] = s / float64(m)
		}
		v, _ := stats.PopulationVariance(agg)
		return v
	}
	v10, v100 := varAt(10), varAt(100)
	gotSlope := math.Log(v100/v10) / math.Log(10)
	wantSlope := 2*h - 2
	if math.Abs(gotSlope-wantSlope) > 0.12 {
		t.Fatalf("aggregated variance slope %v, want %v", gotSlope, wantSlope)
	}
}

func TestGenerateFBM(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	b, err := GenerateFBM(rng, 0.7, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 1001 {
		t.Fatalf("fBm length %d, want 1001", len(b))
	}
	if b[0] != 0 {
		t.Fatalf("fBm must start at 0, got %v", b[0])
	}
}

// Property: generation is deterministic given the seed, and different
// seeds give different paths.
func TestGenerateDeterministicProperty(t *testing.T) {
	f := func(seed int64) bool {
		a, err1 := Generate(rand.New(rand.NewSource(seed)), 0.75, 256)
		b, err2 := Generate(rand.New(rand.NewSource(seed)), 0.75, 256)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		c, err3 := Generate(rand.New(rand.NewSource(seed+1)), 0.75, 256)
		if err3 != nil {
			return false
		}
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		return !same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestHurstFromOnOffAlpha(t *testing.T) {
	h, err := HurstFromOnOffAlpha(1.4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-0.8) > 1e-12 {
		t.Fatalf("H = %v, want 0.8", h)
	}
	for _, a := range []float64{1, 2, 0.5, 3, math.NaN()} {
		if _, err := HurstFromOnOffAlpha(a); err == nil {
			t.Errorf("alpha=%v should error", a)
		}
	}
}

func TestGenerateOnOff(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := OnOffConfig{Sources: 50, Alpha: 1.5, MinPeriod: 1, Rate: 1}
	x, err := GenerateOnOff(rng, cfg, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if len(x) != 10000 {
		t.Fatalf("length %d", len(x))
	}
	// Each bin holds between 0 and Sources units.
	for i, v := range x {
		if v < 0 || v > float64(cfg.Sources) {
			t.Fatalf("bin %d = %v outside [0, %d]", i, v, cfg.Sources)
		}
	}
	// Roughly half the sources are ON on average.
	m, _ := stats.Mean(x)
	if m < 10 || m > 40 {
		t.Fatalf("mean aggregate %v implausible for 50 sources", m)
	}
	// The aggregate must be positively correlated at short lags
	// (long-range dependence shows up as slowly decaying positive ACF).
	acf, err := stats.AutocorrelationFFT(x, 50)
	if err != nil {
		t.Fatal(err)
	}
	if acf[1] < 0.3 || acf[50] < 0.01 {
		t.Fatalf("ON/OFF aggregate not persistently correlated: acf[1]=%v acf[50]=%v", acf[1], acf[50])
	}
}

func TestGenerateOnOffErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	good := OnOffConfig{Sources: 10, Alpha: 1.5, MinPeriod: 1, Rate: 1}
	if _, err := GenerateOnOff(rng, good, 0); !errors.Is(err, ErrLength) {
		t.Error("n=0 should return ErrLength")
	}
	bad := good
	bad.Sources = 0
	if _, err := GenerateOnOff(rng, bad, 10); err == nil {
		t.Error("0 sources should error")
	}
	bad = good
	bad.Rate = 0
	if _, err := GenerateOnOff(rng, bad, 10); err == nil {
		t.Error("0 rate should error")
	}
	bad = good
	bad.Alpha = -2
	if _, err := GenerateOnOff(rng, bad, 10); err == nil {
		t.Error("bad alpha should error")
	}
}

func BenchmarkFGNSources(b *testing.B) {
	b.Run("davies-harte-65536", func(b *testing.B) {
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < b.N; i++ {
			if _, err := Generate(rng, 0.8, 1<<16); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("onoff-50src-65536", func(b *testing.B) {
		rng := rand.New(rand.NewSource(10))
		cfg := OnOffConfig{Sources: 50, Alpha: 1.4, MinPeriod: 1, Rate: 1}
		for i := 0; i < b.N; i++ {
			if _, err := GenerateOnOff(rng, cfg, 1<<16); err != nil {
				b.Fatal(err)
			}
		}
	})
}
