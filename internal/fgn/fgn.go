// Package fgn synthesizes long-range dependent series: exact fractional
// Gaussian noise via the Davies-Harte circulant embedding method, and the
// aggregate of heavy-tailed ON/OFF sources (Willinger et al.), the
// physical mechanism the paper cites for self-similar network traffic.
//
// These generators serve two roles in the library: ground truth for
// validating the Hurst estimators (an estimator applied to exact fGn with
// known H must recover it), and the rate-modulation engine of the
// synthetic Web workload generator.
package fgn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"fullweb/internal/dist"
	"fullweb/internal/fft"
)

var (
	// ErrHurst is returned when the Hurst parameter is outside (0, 1).
	ErrHurst = errors.New("fgn: hurst parameter outside (0, 1)")
	// ErrLength is returned when a non-positive sample count is requested.
	ErrLength = errors.New("fgn: non-positive length")
)

// Autocovariance returns the autocovariance of unit-variance fractional
// Gaussian noise with Hurst parameter h at lag k:
//
//	gamma(k) = ( |k+1|^{2H} - 2|k|^{2H} + |k-1|^{2H} ) / 2
func Autocovariance(h float64, k int) float64 {
	if k < 0 {
		k = -k
	}
	if k == 0 {
		return 1
	}
	fk := float64(k)
	e := 2 * h
	return 0.5 * (math.Pow(fk+1, e) - 2*math.Pow(fk, e) + math.Pow(fk-1, e))
}

// Generate returns n samples of exact zero-mean, unit-variance fractional
// Gaussian noise with Hurst parameter h, using the Davies-Harte method.
// The cost is O(n log n). h must lie in (0, 1); h = 0.5 yields white
// noise, h > 0.5 long-range dependent noise.
func Generate(rng *rand.Rand, h float64, n int) ([]float64, error) {
	if h <= 0 || h >= 1 || math.IsNaN(h) {
		return nil, fmt.Errorf("%w: %v", ErrHurst, h)
	}
	if n <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrLength, n)
	}
	if rng == nil {
		return nil, errors.New("fgn: nil random source")
	}
	// Embed the covariance in a circulant of length 2m with m >= n a power
	// of two, so the FFTs stay radix-2.
	m := fft.NextPowerOfTwo(n)
	size := 2 * m
	c := make([]complex128, size)
	for k := 0; k <= m; k++ {
		c[k] = complex(Autocovariance(h, k), 0)
	}
	for k := 1; k < m; k++ {
		c[size-k] = c[k]
	}
	eig, err := fft.Transform(c)
	if err != nil {
		return nil, fmt.Errorf("fgn: eigenvalue transform: %w", err)
	}
	// The circulant eigenvalues of an fGn covariance are non-negative for
	// all H in (0,1); clamp tiny negative rounding noise.
	g := make([]float64, size)
	for i, v := range eig {
		re := real(v)
		if re < 0 {
			if re < -1e-8 {
				return nil, fmt.Errorf("fgn: negative circulant eigenvalue %v at index %d (H=%v)", re, i, h)
			}
			re = 0
		}
		g[i] = re
	}
	// Build the randomized spectrum with the Hermitian symmetry that makes
	// the inverse transform real.
	w := make([]complex128, size)
	w[0] = complex(math.Sqrt(g[0]/float64(size))*rng.NormFloat64(), 0)
	w[m] = complex(math.Sqrt(g[m]/float64(size))*rng.NormFloat64(), 0)
	for k := 1; k < m; k++ {
		scale := math.Sqrt(g[k] / (2 * float64(size)))
		re := scale * rng.NormFloat64()
		im := scale * rng.NormFloat64()
		w[k] = complex(re, im)
		w[size-k] = complex(re, -im)
	}
	sample, err := fft.Transform(w)
	if err != nil {
		return nil, fmt.Errorf("fgn: synthesis transform: %w", err)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = real(sample[i])
	}
	return out, nil
}

// GenerateFBM returns n+1 samples of fractional Brownian motion on a unit
// grid, i.e. the cumulative sum of fGn starting from 0.
func GenerateFBM(rng *rand.Rand, h float64, n int) ([]float64, error) {
	noise, err := Generate(rng, h, n)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n+1)
	for i, v := range noise {
		out[i+1] = out[i] + v
	}
	return out, nil
}

// OnOffConfig configures the aggregate ON/OFF traffic generator.
type OnOffConfig struct {
	// Sources is the number of independent ON/OFF sources to superpose.
	Sources int
	// Alpha is the Pareto shape of the ON and OFF period durations. For
	// 1 < Alpha < 2 the aggregate is asymptotically self-similar with
	// H = (3 - Alpha) / 2 (Willinger et al. 1997).
	Alpha float64
	// MinPeriod is the Pareto location (minimum period length, in bins).
	MinPeriod float64
	// Rate is the emission per ON source per bin.
	Rate float64
}

// HurstFromOnOffAlpha returns the theoretical Hurst parameter of the
// aggregate of ON/OFF sources with Pareto(alpha) period durations,
// H = (3 - alpha) / 2, valid for 1 < alpha < 2.
func HurstFromOnOffAlpha(alpha float64) (float64, error) {
	if alpha <= 1 || alpha >= 2 || math.IsNaN(alpha) {
		return 0, fmt.Errorf("fgn: ON/OFF alpha %v outside (1, 2)", alpha)
	}
	return (3 - alpha) / 2, nil
}

// GenerateOnOff returns n bins of aggregate traffic volume produced by the
// superposition of heavy-tailed ON/OFF sources. Each source alternates
// independent Pareto(Alpha, MinPeriod) ON and OFF period durations and
// contributes Rate per bin while ON. The phase of each source is
// randomized by discarding a warm-up period so the aggregate is
// approximately stationary.
func GenerateOnOff(rng *rand.Rand, cfg OnOffConfig, n int) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrLength, n)
	}
	if cfg.Sources <= 0 {
		return nil, fmt.Errorf("fgn: ON/OFF needs at least 1 source, got %d", cfg.Sources)
	}
	if cfg.Rate <= 0 || math.IsNaN(cfg.Rate) {
		return nil, fmt.Errorf("fgn: ON/OFF rate %v must be positive", cfg.Rate)
	}
	period, err := dist.NewPareto(cfg.Alpha, math.Max(cfg.MinPeriod, 1))
	if err != nil {
		return nil, fmt.Errorf("fgn: ON/OFF period distribution: %w", err)
	}
	out := make([]float64, n)
	warmup := float64(n) / 4
	for s := 0; s < cfg.Sources; s++ {
		// Random initial state and phase.
		on := rng.Intn(2) == 0
		t := -warmup * rng.Float64()
		for t < float64(n) {
			d := period.Sample(rng)
			if on {
				start := int(math.Max(math.Ceil(t), 0))
				end := int(math.Min(math.Ceil(t+d), float64(n)))
				for b := start; b < end; b++ {
					out[b] += cfg.Rate
				}
			}
			t += d
			on = !on
		}
	}
	return out, nil
}
