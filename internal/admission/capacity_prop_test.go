package admission_test

import (
	"math"
	"math/rand"
	"testing"

	"fullweb/internal/admission"
)

// constLength is a deterministic session-length distribution: every
// session holds for exactly Length seconds and Sample consumes no
// randomness, which makes the loss system pathwise comparable across
// capacities — the same arrival stream plays out admit-by-admit, so
// the capacity-sweep monotonicity below is exact, not statistical.
type constLength struct{ Length float64 }

func (c constLength) CDF(x float64) float64 {
	if x < c.Length {
		return 0
	}
	return 1
}
func (c constLength) Quantile(float64) (float64, error) { return c.Length, nil }
func (c constLength) Mean() float64                     { return c.Length }
func (c constLength) Var() float64                      { return 0 }
func (c constLength) Sample(*rand.Rand) float64         { return c.Length }

// TestBlockingMonotoneInCapacity: with a deterministic session length
// the same arrival stream replays at every capacity, so rejected
// counts are non-increasing and blocking probability non-increasing as
// slots are added.
func TestBlockingMonotoneInCapacity(t *testing.T) {
	base := admission.Config{
		ArrivalRate:   0.5,
		SessionLength: constLength{Length: 60},
		Horizon:       6 * 3600,
		Seed:          11,
	}
	prevRejected := math.MaxInt64
	prevBlocking := math.Inf(1)
	for _, capacity := range []int{5, 10, 15, 20, 30, 45, 60, 90} {
		cfg := base
		cfg.Capacity = capacity
		res, err := admission.Simulate(cfg)
		if err != nil {
			t.Fatalf("capacity=%d: %v", capacity, err)
		}
		if res.Rejected > prevRejected {
			t.Errorf("capacity=%d: rejected rose %d -> %d", capacity, prevRejected, res.Rejected)
		}
		if bp := res.BlockingProbability(); bp > prevBlocking {
			t.Errorf("capacity=%d: blocking rose %v -> %v", capacity, prevBlocking, bp)
		} else {
			prevBlocking = bp
		}
		prevRejected = res.Rejected
	}
	// The sweep must actually exercise the loss system: the smallest
	// capacity rejects, the largest accepts everything.
	small := base
	small.Capacity = 5
	large := base
	large.Capacity = 90
	sres, _ := admission.Simulate(small)
	lres, _ := admission.Simulate(large)
	if sres.Rejected == 0 {
		t.Error("smallest capacity rejected nothing; sweep has no signal")
	}
	if lres.Rejected != 0 {
		t.Errorf("largest capacity still rejected %d sessions", lres.Rejected)
	}
}

// TestBlockingMonotoneInScale: at fixed capacity, scaling the offered
// load up (the what-if K on session arrivals) never reduces blocking.
// Deterministic lengths again make the comparison structural: each
// scaled arrival stream is a superset-in-rate of the previous one
// statistically, so the property is asserted across seeds to rule out
// a lucky stream.
func TestBlockingMonotoneInScale(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		prev := -1.0
		for _, k := range []float64{0.5, 1, 1.5, 2, 3} {
			res, err := admission.Simulate(admission.Config{
				Capacity:      20,
				ArrivalRate:   0.4 * k,
				SessionLength: constLength{Length: 60},
				Horizon:       12 * 3600,
				Seed:          seed,
			})
			if err != nil {
				t.Fatalf("k=%v: %v", k, err)
			}
			bp := res.BlockingProbability()
			if bp < prev-0.01 {
				t.Errorf("seed=%d k=%v: blocking fell %v -> %v", seed, k, prev, bp)
			}
			prev = bp
		}
	}
}

// TestErlangBMonotone: the analytic loss formula is monotone exactly —
// non-increasing in servers at fixed load, increasing in load at fixed
// servers — and bounded in (0, 1).
func TestErlangBMonotone(t *testing.T) {
	const load = 12.0
	prev := math.Inf(1)
	for servers := 1; servers <= 40; servers++ {
		b, err := admission.ErlangB(load, servers)
		if err != nil {
			t.Fatalf("servers=%d: %v", servers, err)
		}
		if b <= 0 || b >= 1 {
			t.Fatalf("servers=%d: B=%v outside (0,1)", servers, b)
		}
		if b > prev {
			t.Errorf("servers=%d: blocking rose %v -> %v", servers, prev, b)
		}
		prev = b
	}
	prev = -1
	for _, load := range []float64{0.5, 1, 2, 4, 8, 16, 32} {
		b, err := admission.ErlangB(load, 10)
		if err != nil {
			t.Fatal(err)
		}
		if b < prev {
			t.Errorf("load=%v: blocking fell %v -> %v", load, prev, b)
		}
		prev = b
	}
	// Closed form anchor: one server at one erlang blocks half the
	// offered sessions, B(1,1) = 1/(1+1).
	b, err := admission.ErlangB(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b-0.5) > 1e-15 {
		t.Errorf("B(1,1) = %v, want 0.5", b)
	}
}

// TestErlangBAgreesWithSimulation: the simulator converges to the
// analytic Erlang-B blocking under its insensitivity property — a
// deterministic session length has the same mean as any other shape,
// so the analytic answer applies unchanged.
func TestErlangBAgreesWithSimulation(t *testing.T) {
	const (
		capacity = 10
		rate     = 0.2
		length   = 60.0
	)
	want, err := admission.ErlangB(rate*length, capacity)
	if err != nil {
		t.Fatal(err)
	}
	var got float64
	const runs = 5
	for seed := int64(0); seed < runs; seed++ {
		res, err := admission.Simulate(admission.Config{
			Capacity:      capacity,
			ArrivalRate:   rate,
			SessionLength: constLength{Length: length},
			Horizon:       200_000,
			Seed:          100 + seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		got += res.BlockingProbability()
	}
	got /= runs
	if math.Abs(got-want) > 0.25*want {
		t.Errorf("simulated blocking %v, Erlang-B %v (tolerance 25%%)", got, want)
	}
}
