// Package admission implements session-based admission control in the
// style of Cherkasova & Phaal (the papers the studied work cites as
// reference [5]/[6]): a loss system that caps the number of concurrent
// sessions. The paper's Section 5.2.1 shows the simulations behind that
// mechanism assumed exponential session lengths while real session
// lengths are heavy-tailed; this package provides the simulator with
// pluggable session-length distributions so the consequences can be
// quantified (see examples/admission).
package admission

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"fullweb/internal/dist"
	"fullweb/internal/stats"
)

var (
	// ErrBadParam is returned for invalid simulator parameters.
	ErrBadParam = errors.New("admission: invalid parameter")
)

// Config parameterizes the loss-system simulation.
type Config struct {
	// Capacity is the number of concurrent session slots.
	Capacity int
	// ArrivalRate is the session arrival rate (sessions per second,
	// Poisson arrivals).
	ArrivalRate float64
	// SessionLength samples the session holding times (seconds).
	SessionLength dist.Continuous
	// Horizon is the simulated time in seconds.
	Horizon float64
	// Seed fixes the randomness.
	Seed int64
}

// Result summarizes one simulation run.
type Result struct {
	// Arrivals and Rejected count offered and refused sessions.
	Arrivals, Rejected int
	// Hourly[i] is the number of rejections in hour i; the temporal
	// structure of rejections is where heavy tails show up.
	Hourly []float64
}

// BlockingProbability returns Rejected/Arrivals.
func (r Result) BlockingProbability() float64 {
	if r.Arrivals == 0 {
		return 0
	}
	return float64(r.Rejected) / float64(r.Arrivals)
}

// RejectionDispersion returns the variance-to-mean ratio of the hourly
// rejection counts: ~1 when rejections are spread Poisson-like, large
// when they cluster into outages.
func (r Result) RejectionDispersion() float64 {
	m, err := stats.Mean(r.Hourly)
	if err != nil || m == 0 {
		return 0
	}
	v, err := stats.Variance(r.Hourly)
	if err != nil {
		return 0
	}
	return v / m
}

// LongestRejectingStreak returns the longest run of consecutive hours
// with at least one rejection.
func (r Result) LongestRejectingStreak() int {
	best, cur := 0, 0
	for _, v := range r.Hourly {
		if v > 0 {
			cur++
			if cur > best {
				best = cur
			}
		} else {
			cur = 0
		}
	}
	return best
}

// MaxHourlyRejections returns the worst hour.
func (r Result) MaxHourlyRejections() float64 {
	if len(r.Hourly) == 0 {
		return 0
	}
	_, max, err := stats.MinMax(r.Hourly)
	if err != nil {
		return 0
	}
	return max
}

// departureHeap is a min-heap of session departure times.
type departureHeap []float64

func (h departureHeap) Len() int            { return len(h) }
func (h departureHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h departureHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *departureHeap) Push(x interface{}) { *h = append(*h, x.(float64)) }
func (h *departureHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// Simulate runs the loss system: Poisson arrivals, admit when a slot is
// free, hold for a sampled session length, reject otherwise.
func Simulate(cfg Config) (Result, error) {
	if cfg.Capacity <= 0 {
		return Result{}, fmt.Errorf("%w: capacity %d", ErrBadParam, cfg.Capacity)
	}
	if cfg.ArrivalRate <= 0 || math.IsNaN(cfg.ArrivalRate) {
		return Result{}, fmt.Errorf("%w: arrival rate %v", ErrBadParam, cfg.ArrivalRate)
	}
	if cfg.Horizon <= 3600 || math.IsNaN(cfg.Horizon) {
		return Result{}, fmt.Errorf("%w: horizon %v (need > 1 hour)", ErrBadParam, cfg.Horizon)
	}
	if cfg.SessionLength == nil {
		return Result{}, fmt.Errorf("%w: nil session length distribution", ErrBadParam)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	arrivals, err := dist.PoissonProcess(rng, cfg.ArrivalRate, cfg.Horizon)
	if err != nil {
		return Result{}, fmt.Errorf("admission: arrivals: %w", err)
	}
	res := Result{
		Arrivals: len(arrivals),
		Hourly:   make([]float64, int(cfg.Horizon)/3600+1),
	}
	var busy departureHeap
	for _, t := range arrivals {
		for len(busy) > 0 && busy[0] <= t {
			heap.Pop(&busy)
		}
		if len(busy) < cfg.Capacity {
			length := cfg.SessionLength.Sample(rng)
			if length < 0 || math.IsNaN(length) {
				return Result{}, fmt.Errorf("%w: sampled session length %v", ErrBadParam, length)
			}
			heap.Push(&busy, t+length)
		} else {
			res.Rejected++
			res.Hourly[int(t)/3600]++
		}
	}
	return res, nil
}

// ErlangB returns the Erlang-B blocking probability for the given
// offered load (erlang) and number of servers, via the standard stable
// recursion. By the M/G/c/c insensitivity property this is the exact
// stationary blocking probability for ANY session-length distribution
// with the same mean — which is why blocking alone cannot reveal the
// heavy-tail problem.
func ErlangB(offeredLoad float64, servers int) (float64, error) {
	if offeredLoad <= 0 || math.IsNaN(offeredLoad) || servers <= 0 {
		return 0, fmt.Errorf("%w: load %v servers %d", ErrBadParam, offeredLoad, servers)
	}
	b := 1.0
	for k := 1; k <= servers; k++ {
		b = offeredLoad * b / (float64(k) + offeredLoad*b)
	}
	return b, nil
}
