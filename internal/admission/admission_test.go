package admission

import (
	"errors"
	"math"
	"testing"

	"fullweb/internal/dist"
)

func TestErlangBKnownValues(t *testing.T) {
	// Classic: 10 erlang on 10 servers -> B ~ 0.215; 1 erlang on 1
	// server -> 0.5.
	b, err := ErlangB(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b-0.5) > 1e-12 {
		t.Errorf("ErlangB(1,1) = %v", b)
	}
	b, err = ErlangB(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b-0.21459) > 1e-4 {
		t.Errorf("ErlangB(10,10) = %v, want ~0.2146", b)
	}
	if _, err := ErlangB(0, 5); !errors.Is(err, ErrBadParam) {
		t.Error("zero load should return ErrBadParam")
	}
}

func mustExp(t *testing.T, rate float64) dist.Exponential {
	t.Helper()
	d, err := dist.NewExponential(rate)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSimulateBlockingMatchesErlangB(t *testing.T) {
	// Exponential sessions: the simulated blocking must match Erlang-B.
	const (
		capacity = 20
		lambda   = 0.05
		meanLen  = 300.0
	)
	res, err := Simulate(Config{
		Capacity:      capacity,
		ArrivalRate:   lambda,
		SessionLength: mustExp(t, 1/meanLen),
		Horizon:       4e6,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ErlangB(lambda*meanLen, capacity)
	if err != nil {
		t.Fatal(err)
	}
	got := res.BlockingProbability()
	if math.Abs(got-want) > 0.25*want+0.002 {
		t.Fatalf("simulated blocking %v vs Erlang-B %v", got, want)
	}
}

func TestSimulateInsensitivityAcrossDistributions(t *testing.T) {
	// M/G/c/c insensitivity: Pareto sessions with the same mean must
	// produce (approximately) the same blocking probability.
	const (
		capacity = 20
		lambda   = 0.05
		meanLen  = 300.0
	)
	pareto, err := dist.NewPareto(1.6, meanLen*0.6/1.6)
	if err != nil {
		t.Fatal(err)
	}
	expRes, err := Simulate(Config{
		Capacity: capacity, ArrivalRate: lambda,
		SessionLength: mustExp(t, 1/meanLen), Horizon: 6e6, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	parRes, err := Simulate(Config{
		Capacity: capacity, ArrivalRate: lambda,
		SessionLength: pareto, Horizon: 6e6, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	be, bp := expRes.BlockingProbability(), parRes.BlockingProbability()
	if math.Abs(be-bp) > 0.5*be+0.003 {
		t.Fatalf("insensitivity violated: exponential %v vs Pareto %v", be, bp)
	}
	// ... while the temporal clustering differs: Pareto disperses more.
	if parRes.RejectionDispersion() <= expRes.RejectionDispersion() {
		t.Errorf("Pareto dispersion %v not above exponential %v",
			parRes.RejectionDispersion(), expRes.RejectionDispersion())
	}
}

func TestSimulateValidation(t *testing.T) {
	good := Config{
		Capacity: 5, ArrivalRate: 0.1,
		SessionLength: mustExp(t, 0.01), Horizon: 7200, Seed: 1,
	}
	bad := good
	bad.Capacity = 0
	if _, err := Simulate(bad); !errors.Is(err, ErrBadParam) {
		t.Error("zero capacity should return ErrBadParam")
	}
	bad = good
	bad.ArrivalRate = 0
	if _, err := Simulate(bad); !errors.Is(err, ErrBadParam) {
		t.Error("zero rate should return ErrBadParam")
	}
	bad = good
	bad.Horizon = 100
	if _, err := Simulate(bad); !errors.Is(err, ErrBadParam) {
		t.Error("tiny horizon should return ErrBadParam")
	}
	bad = good
	bad.SessionLength = nil
	if _, err := Simulate(bad); !errors.Is(err, ErrBadParam) {
		t.Error("nil distribution should return ErrBadParam")
	}
}

func TestResultAccessorsEmpty(t *testing.T) {
	var r Result
	if r.BlockingProbability() != 0 || r.RejectionDispersion() != 0 ||
		r.LongestRejectingStreak() != 0 || r.MaxHourlyRejections() != 0 {
		t.Error("zero-value Result accessors should return zeros")
	}
}

func TestLongestRejectingStreak(t *testing.T) {
	r := Result{Hourly: []float64{0, 1, 2, 0, 3, 4, 5, 0}}
	if got := r.LongestRejectingStreak(); got != 3 {
		t.Errorf("streak = %d, want 3", got)
	}
	if got := r.MaxHourlyRejections(); got != 5 {
		t.Errorf("max hourly = %v, want 5", got)
	}
}
