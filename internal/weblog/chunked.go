package weblog

import (
	"bufio"
	"compress/gzip"
	"context"
	"fmt"
	"io"
	"strings"

	"fullweb/internal/obs"
	"fullweb/internal/parallel"
)

// gzipMagic is the two-byte header every gzip member starts with
// (RFC 1952). Production access logs are rotated and compressed, so the
// reader sniffs it and decompresses transparently.
var gzipMagic = []byte{0x1f, 0x8b}

// MaybeDecompress wraps r with a gzip reader when the stream starts
// with the gzip magic bytes and returns it unchanged (modulo buffering)
// otherwise. Callers get plain CLF text either way, so `.gz` rotated
// logs and uncompressed logs flow through the same parsing paths.
func MaybeDecompress(r io.Reader) (io.Reader, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(gzipMagic))
	if err != nil {
		// Too short to carry the magic (empty or one-byte input): not
		// gzip; hand the buffered reader back untouched.
		return br, nil
	}
	if head[0] != gzipMagic[0] || head[1] != gzipMagic[1] {
		return br, nil
	}
	zr, err := gzip.NewReader(br)
	if err != nil {
		return nil, fmt.Errorf("weblog: gzip header: %w", err)
	}
	return zr, nil
}

// Chunk is one contiguous run of parsed lines from a chunked scan:
// the records in input order plus the malformed lines of the chunk.
// FirstLine is the 1-based line number of the chunk's first input line,
// so ParseError positions stay global across chunks.
type Chunk struct {
	FirstLine int
	// Lines is the number of raw input lines the chunk consumed
	// (including blank lines), so consumers can track exact stream
	// positions for checkpointing.
	Lines   int
	Records []Record
	Errs    []ParseError
	// ErrRecIndex holds, for each entry of Errs, how many of the
	// chunk's Records precede that malformed line. It lets consumers
	// interleave records and rejects in true input order, so error
	// accounting at snapshot boundaries is independent of chunk
	// geometry.
	ErrRecIndex []int
}

// ChunkConfig tunes ReadChunksCtx. The zero value selects the
// defaults.
type ChunkConfig struct {
	// Lines is the number of input lines per chunk (default 4096).
	Lines int
	// Window is the number of chunks parsed concurrently per round —
	// the backpressure bound: at most Window*Lines lines (plus their
	// records) are in flight, independent of trace length. Default 8.
	Window int
	// SkipLines discards this many raw input lines before chunking
	// begins, preserving global line numbering — how a resumed run
	// seeks back to its checkpointed stream position.
	SkipLines int64
	// MaxFieldBytes, when positive, rejects records whose host or path
	// exceeds the bound; rejects surface as ParseErrors wrapping
	// ErrOversized. Zero disables the check.
	MaxFieldBytes int
}

// DefaultChunkLines and DefaultChunkWindow are the ChunkConfig zero-
// value defaults. Exported so front ends can reason about the
// backpressure bound (Window chunks in flight) when configuring
// health rules.
const (
	DefaultChunkLines  = 4096
	DefaultChunkWindow = 8
)

func (c ChunkConfig) withDefaults() ChunkConfig {
	if c.Lines <= 0 {
		c.Lines = DefaultChunkLines
	}
	if c.Window <= 0 {
		c.Window = DefaultChunkWindow
	}
	return c
}

// ReadChunksCtx scans CLF lines from r in bounded-memory chunks and
// hands them to emit in input order. Within each round, up to
// cfg.Window chunks of raw lines are read sequentially and parsed
// concurrently on pool (parsing dominates scanning); emit then receives
// the parsed chunks strictly in input order, so downstream state
// machines see exactly the sequence a sequential parse would produce —
// parallelism changes when lines are parsed, never what emit observes.
// Unlike ReadAllCtx, no full-trace slice ever exists: peak memory is
// bounded by the chunk window, not the log length.
//
// emit returning an error aborts the scan with that error.
func ReadChunksCtx(ctx context.Context, r io.Reader, pool *parallel.Pool, cfg ChunkConfig, emit func(Chunk) error) error {
	cfg = cfg.withDefaults()
	ctx, sp := obs.StartSpan(ctx, "weblog.read_chunks")
	defer sp.End()
	dr, err := MaybeDecompress(r)
	if err != nil {
		return err
	}
	scanner := bufio.NewScanner(dr)
	scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var (
		records   int64
		parseErrs int64
		chunks    int64
	)
	// Live counters move at chunk granularity so a telemetry scraper
	// watches parse progress mid-run; chunks_in_flight is the
	// backpressure queue depth — parsed chunks not yet drained by emit,
	// bounded by cfg.Window.
	reg := obs.MetricsFrom(ctx)
	recordsC := reg.Counter("weblog.records_parsed")
	parseErrsC := reg.Counter("weblog.parse_errors")
	chunksC := reg.Counter("weblog.chunks_parsed")
	inFlight := reg.Gauge("weblog.chunks_in_flight")
	lineNo := 0
	for int64(lineNo) < cfg.SkipLines {
		if !scanner.Scan() {
			if err := scanner.Err(); err != nil {
				return &ReadError{Line: lineNo, Err: err}
			}
			return fmt.Errorf("weblog: input ends at line %d, before resume position %d", lineNo, cfg.SkipLines)
		}
		lineNo++
	}
	eof := false
	// raw rounds: read Window chunks of lines, fan the parse out, emit
	// in order, repeat.
	type rawChunk struct {
		firstLine int
		lines     []string
	}
	for !eof {
		if err := ctx.Err(); err != nil {
			return err
		}
		raws := make([]rawChunk, 0, cfg.Window)
		for len(raws) < cfg.Window {
			if err := fpRead.Check(ctx); err != nil {
				return &ReadError{Line: lineNo, Err: err}
			}
			raw := rawChunk{firstLine: lineNo + 1, lines: make([]string, 0, cfg.Lines)}
			for len(raw.lines) < cfg.Lines {
				if !scanner.Scan() {
					eof = true
					break
				}
				lineNo++
				raw.lines = append(raw.lines, scanner.Text())
			}
			if len(raw.lines) > 0 {
				raws = append(raws, raw)
			}
			if eof {
				break
			}
		}
		if len(raws) == 0 {
			break
		}
		parsed, err := parallel.Map(ctx, pool, len(raws), func(ctx context.Context, i int) (Chunk, error) {
			if err := fpParse.Check(ctx); err != nil {
				return Chunk{}, fmt.Errorf("weblog: parsing chunk at line %d: %w", raws[i].firstLine, err)
			}
			return parseChunk(raws[i].firstLine, raws[i].lines, cfg.MaxFieldBytes), nil
		})
		if err != nil {
			return err
		}
		inFlight.Set(int64(len(parsed)))
		for _, ch := range parsed {
			records += int64(len(ch.Records))
			parseErrs += int64(len(ch.Errs))
			chunks++
			recordsC.Add(int64(len(ch.Records)))
			parseErrsC.Add(int64(len(ch.Errs)))
			chunksC.Inc()
			if err := emit(ch); err != nil {
				return err
			}
			inFlight.Add(-1)
		}
	}
	if err := scanner.Err(); err != nil {
		// A mid-stream failure (truncated gzip member, disk fault) is
		// positioned at the last line that scanned cleanly, so strict
		// mode can report exactly where the input broke and budgeted
		// mode can account for what was lost.
		return &ReadError{Line: lineNo, Err: err}
	}
	sp.SetInt("chunks", chunks)
	sp.SetInt("records", records)
	sp.SetInt("errors", parseErrs)
	return nil
}

// parseChunk parses one chunk's lines, mirroring readAll's tolerance:
// malformed lines are collected, blank lines skipped. When
// maxFieldBytes is positive, records with oversized host/path fields
// are rejected as ParseErrors wrapping ErrOversized.
//hot:path — runs once per input line; the parse loop's allocation
// budget is the engine's throughput bound (DESIGN.md §13).
func parseChunk(firstLine int, lines []string, maxFieldBytes int) Chunk {
	ch := Chunk{FirstLine: firstLine, Lines: len(lines)}
	// Presize for the common case (every line parses) so the append
	// below never regrows mid-chunk.
	ch.Records = make([]Record, 0, len(lines))
	for i, line := range lines {
		if strings.TrimSpace(line) == "" {
			continue
		}
		rec, err := ParseCLF(line)
		if err != nil {
			ch.reject(firstLine+i, line, err)
			continue
		}
		if err := Oversized(rec, maxFieldBytes); err != nil {
			ch.reject(firstLine+i, line, err)
			continue
		}
		ch.Records = append(ch.Records, rec)
	}
	return ch
}

// reject records one malformed line (the cold path of parseChunk; a
// method rather than a closure so the hot loop allocates no function
// object).
func (ch *Chunk) reject(lineNo int, line string, err error) {
	ch.Errs = append(ch.Errs, ParseError{LineNumber: lineNo, Line: line, Err: err})
	ch.ErrRecIndex = append(ch.ErrRecIndex, len(ch.Records))
}
