package weblog

import (
	"strings"
	"testing"
)

// FuzzParseCLF checks that the parser never panics and that every
// successfully parsed record survives a format/parse round trip with
// every field equal — including the zero-bytes / missing-bytes
// distinction, which an earlier formatter collapsed to "-".
func FuzzParseCLF(f *testing.F) {
	f.Add(sampleLine)
	f.Add(`h - - [12/Jan/2004:10:30:45 -0500] "GET / HTTP/1.1" 304 -`)
	f.Add(`h - - [12/Jan/2004:10:30:45 -0500] "GET / HTTP/1.1" 304 0`)
	f.Add("")
	f.Add(`x - - [bad] "GET / H" 200 1`)
	f.Add(strings.Repeat(`"`, 30))
	f.Add(`h - - [12/Jan/2004:10:30:45 -0500] "GET / HTTP/1.0" 200 99999999999999999999`)
	f.Fuzz(func(t *testing.T, line string) {
		rec, err := ParseCLF(line)
		if err != nil {
			return
		}
		back, err := ParseCLF(rec.FormatCLF())
		if err != nil {
			t.Fatalf("round trip of %q failed: %v", line, err)
		}
		// The formatter sanitizes framing-breaking characters, so string
		// fields are preserved modulo sanitization; everything else must
		// be exactly equal. Time needs Equal, not ==: time.Parse builds a
		// fresh FixedZone per call.
		if back.Host != sanitizeField(rec.Host) ||
			back.Method != sanitizeField(rec.Method) ||
			back.Path != sanitizeField(rec.Path) ||
			back.Proto != sanitizeField(rec.Proto) {
			t.Fatalf("round trip changed request fields: %+v vs %+v", rec, back)
		}
		if back.Status != rec.Status || back.Bytes != rec.Bytes || back.BytesMissing != rec.BytesMissing {
			t.Fatalf("round trip changed status/bytes: %+v vs %+v", rec, back)
		}
		if !back.Time.Equal(rec.Time) {
			t.Fatalf("round trip changed time: %v vs %v", rec.Time, back.Time)
		}
	})
}

// FuzzParseCombined checks the Combined parser for panics and round-trip
// stability.
func FuzzParseCombined(f *testing.F) {
	f.Add(combinedLine)
	f.Add(`h - - [12/Jan/2004:10:30:45 -0500] "GET / HTTP/1.0" 200 1 "-" "-"`)
	f.Add(`h - - [12/Jan/2004:10:30:45 -0500] "GET / HTTP/1.0" 200 1 "ref`)
	f.Fuzz(func(t *testing.T, line string) {
		rec, err := ParseCombined(line)
		if err != nil {
			return
		}
		back, err := ParseCombined(rec.FormatCombined())
		if err != nil {
			t.Fatalf("round trip of %q failed: %v", line, err)
		}
		wantRef := dashEmpty(dashIfEmpty(sanitizeQuoted(rec.Referer)))
		wantUA := dashEmpty(dashIfEmpty(sanitizeQuoted(rec.UserAgent)))
		if back.Referer != wantRef || back.UserAgent != wantUA {
			t.Fatalf("round trip changed quoted fields: %+v vs %+v", rec, back)
		}
	})
}
