package weblog

import (
	"bytes"
	"compress/gzip"
	"context"
	"errors"
	"io"
	"strings"
	"testing"

	"fullweb/internal/parallel"
)

// chunkedSample is a small log exercising every parse path: valid
// lines, blank lines and malformed lines, spread across chunk
// boundaries when parsed with tiny chunks.
const chunkedSample = `h1 - - [12/Jan/2004:10:30:45 -0500] "GET /a HTTP/1.0" 200 100
h2 - - [12/Jan/2004:10:30:46 -0500] "GET /b HTTP/1.0" 200 200

not a log line
h1 - - [12/Jan/2004:10:31:00 -0500] "GET /c HTTP/1.0" 404 -
h3 - - [12/Jan/2004:11:30:45 -0500] "POST /d HTTP/1.1" 500 3000
garbage [again
h2 - - [12/Jan/2004:12:00:00 -0500] "GET /e HTTP/1.0" 200 50
`

// collectChunks runs ReadChunksCtx and concatenates its output.
func collectChunks(t *testing.T, r io.Reader, workers int, cfg ChunkConfig) ([]Record, []ParseError) {
	t.Helper()
	var recs []Record
	var errs []ParseError
	err := ReadChunksCtx(context.Background(), r, parallel.NewPool(workers), cfg, func(ch Chunk) error {
		recs = append(recs, ch.Records...)
		errs = append(errs, ch.Errs...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return recs, errs
}

// requireSameParse asserts the chunked scan saw exactly what ReadAll
// sees: same records in the same order, same errors at the same global
// line numbers.
func requireSameParse(t *testing.T, recs []Record, errs []ParseError, wantRecs []Record, wantErrs []ParseError) {
	t.Helper()
	if len(recs) != len(wantRecs) {
		t.Fatalf("chunked parse got %d records, ReadAll %d", len(recs), len(wantRecs))
	}
	for i := range recs {
		if recs[i].FormatCLF() != wantRecs[i].FormatCLF() || !recs[i].Time.Equal(wantRecs[i].Time) {
			t.Fatalf("record %d differs:\nchunked %q\nreadall %q", i, recs[i].FormatCLF(), wantRecs[i].FormatCLF())
		}
	}
	if len(errs) != len(wantErrs) {
		t.Fatalf("chunked parse got %d errors, ReadAll %d", len(errs), len(wantErrs))
	}
	for i := range errs {
		if errs[i].LineNumber != wantErrs[i].LineNumber || errs[i].Line != wantErrs[i].Line {
			t.Fatalf("error %d differs: chunked line %d %q, readall line %d %q",
				i, errs[i].LineNumber, errs[i].Line, wantErrs[i].LineNumber, wantErrs[i].Line)
		}
	}
}

func TestReadChunksMatchesReadAll(t *testing.T) {
	wantRecs, wantErrs, err := ReadAll(strings.NewReader(chunkedSample))
	if err != nil {
		t.Fatal(err)
	}
	if len(wantRecs) != 5 || len(wantErrs) != 2 {
		t.Fatalf("sample expectations drifted: %d records, %d errors", len(wantRecs), len(wantErrs))
	}
	// Tiny chunks force multiple rounds; every worker count must see the
	// identical sequence (parallelism changes when, never what).
	for _, workers := range []int{1, 4} {
		for _, cfg := range []ChunkConfig{{}, {Lines: 1, Window: 1}, {Lines: 2, Window: 2}, {Lines: 3, Window: 8}} {
			recs, errs := collectChunks(t, strings.NewReader(chunkedSample), workers, cfg)
			requireSameParse(t, recs, errs, wantRecs, wantErrs)
		}
	}
}

func TestReadChunksChunkBookkeeping(t *testing.T) {
	var chunks []Chunk
	err := ReadChunksCtx(context.Background(), strings.NewReader(chunkedSample),
		parallel.NewPool(1), ChunkConfig{Lines: 3, Window: 2}, func(ch Chunk) error {
			chunks = append(chunks, ch)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	// 8 input lines (7 + trailing newline is not a line) in chunks of 3:
	// first lines 1, 4, 7.
	wantFirst := []int{1, 4, 7}
	if len(chunks) != len(wantFirst) {
		t.Fatalf("got %d chunks, want %d", len(chunks), len(wantFirst))
	}
	for i, ch := range chunks {
		if ch.FirstLine != wantFirst[i] {
			t.Errorf("chunk %d FirstLine = %d, want %d", i, ch.FirstLine, wantFirst[i])
		}
	}
}

func TestReadChunksEmitErrorAborts(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	err := ReadChunksCtx(context.Background(), strings.NewReader(chunkedSample),
		parallel.NewPool(1), ChunkConfig{Lines: 2, Window: 1}, func(ch Chunk) error {
			calls++
			return boom
		})
	if !errors.Is(err, boom) {
		t.Fatalf("emit error not propagated: %v", err)
	}
	if calls != 1 {
		t.Fatalf("emit called %d times after aborting error", calls)
	}
}

func TestReadChunksCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ReadChunksCtx(ctx, strings.NewReader(chunkedSample), parallel.NewPool(1), ChunkConfig{}, func(Chunk) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// gzipBytes compresses text in memory.
func gzipBytes(t *testing.T, text string) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write([]byte(text)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGzipRoundTrip is the satellite round-trip check: a log parsed
// from its gzip-compressed form must be indistinguishable from the
// plain-text fixture, through both ReadAll and the chunked reader.
func TestGzipRoundTrip(t *testing.T) {
	plainRecs, plainErrs, err := ReadAll(strings.NewReader(chunkedSample))
	if err != nil {
		t.Fatal(err)
	}
	gz := gzipBytes(t, chunkedSample)

	gzRecs, gzErrs, err := ReadAll(bytes.NewReader(gz))
	if err != nil {
		t.Fatal(err)
	}
	requireSameParse(t, gzRecs, gzErrs, plainRecs, plainErrs)

	chRecs, chErrs := collectChunks(t, bytes.NewReader(gz), 2, ChunkConfig{Lines: 2, Window: 2})
	requireSameParse(t, chRecs, chErrs, plainRecs, plainErrs)
}

// TestGzipMultistream checks concatenated gzip members (rotated logs
// catenated with `cat a.gz b.gz`) decompress as one continuous stream.
func TestGzipMultistream(t *testing.T) {
	lines := strings.SplitAfter(strings.TrimSuffix(chunkedSample, "\n"), "\n")
	half := len(lines) / 2
	cat := append(gzipBytes(t, strings.Join(lines[:half], "")), gzipBytes(t, strings.Join(lines[half:], ""))...)

	plainRecs, plainErrs, err := ReadAll(strings.NewReader(chunkedSample))
	if err != nil {
		t.Fatal(err)
	}
	recs, errs, err := ReadAll(bytes.NewReader(cat))
	if err != nil {
		t.Fatal(err)
	}
	requireSameParse(t, recs, errs, plainRecs, plainErrs)
}

func TestMaybeDecompressPassthrough(t *testing.T) {
	for _, tc := range []struct{ name, in string }{
		{"empty", ""},
		{"one byte", "h"},
		{"plain text", "hello\nworld\n"},
		{"binary non-gzip", "\x1f\x00not gzip"},
	} {
		r, err := MaybeDecompress(strings.NewReader(tc.in))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		out, err := io.ReadAll(r)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if string(out) != tc.in {
			t.Errorf("%s: passthrough changed bytes: %q", tc.name, out)
		}
	}
}

func TestMaybeDecompressCorruptGzip(t *testing.T) {
	// Correct magic, garbage after: the gzip header parse must fail
	// loudly rather than silently yielding garbage text.
	if _, err := MaybeDecompress(strings.NewReader("\x1f\x8bgarbage")); err == nil {
		t.Fatal("corrupt gzip accepted")
	}
}

// TestReadAllTransparentGzip covers the satellite wiring: every parsing
// entry point goes through readAll, which now sniffs gzip, so .gz
// inputs work everywhere without callers opting in.
func TestReadAllTransparentGzip(t *testing.T) {
	recs, _, err := ReadAll(bytes.NewReader(gzipBytes(t, sampleLine+"\n")))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records from gzip sample", len(recs))
	}
}
