package weblog

import (
	"bytes"
	"compress/gzip"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fullweb/internal/faultpoint"
	"fullweb/internal/parallel"
)

func faultCtx(t *testing.T, spec string) context.Context {
	t.Helper()
	set, err := faultpoint.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return faultpoint.With(context.Background(), set)
}

func TestOpenRetryRecoversFromTransientFaults(t *testing.T) {
	path := filepath.Join(t.TempDir(), "access.log")
	if err := os.WriteFile(path, []byte("x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Two injected open failures, three attempts: the third succeeds.
	ctx := faultCtx(t, "weblog.open=every:1,times:2")
	var slept []time.Duration
	policy := RetryPolicy{Attempts: 3, Backoff: 10 * time.Millisecond, Sleep: func(d time.Duration) { slept = append(slept, d) }}
	f, err := OpenRetry(ctx, path, policy)
	if err != nil {
		t.Fatalf("OpenRetry: %v", err)
	}
	f.Close()
	if len(slept) != 2 || slept[0] != 10*time.Millisecond || slept[1] != 20*time.Millisecond {
		t.Fatalf("backoff schedule %v, want [10ms 20ms]", slept)
	}
}

func TestOpenRetryExhaustsBudget(t *testing.T) {
	path := filepath.Join(t.TempDir(), "access.log")
	if err := os.WriteFile(path, []byte("x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx := faultCtx(t, "weblog.open=every:1")
	_, err := OpenRetry(ctx, path, RetryPolicy{Attempts: 3})
	if err == nil {
		t.Fatal("OpenRetry succeeded under a permanent open fault")
	}
	if !faultpoint.IsFault(err) {
		t.Fatalf("error %v does not wrap the injected fault", err)
	}
	// Missing files fail after the full attempt budget too.
	if _, err := OpenRetry(context.Background(), filepath.Join(t.TempDir(), "nope"), RetryPolicy{Attempts: 2}); err == nil {
		t.Fatal("OpenRetry succeeded on a missing file")
	}
}

func TestOversized(t *testing.T) {
	rec := Record{Host: "host", Path: strings.Repeat("/p", 50)}
	if err := Oversized(rec, 0); err != nil {
		t.Fatalf("disabled check rejected: %v", err)
	}
	if err := Oversized(rec, 200); err != nil {
		t.Fatalf("in-bounds record rejected: %v", err)
	}
	if err := Oversized(rec, 16); !errors.Is(err, ErrOversized) {
		t.Fatalf("oversized path not rejected: %v", err)
	}
	rec2 := Record{Host: strings.Repeat("h", 300), Path: "/"}
	if err := Oversized(rec2, 16); !errors.Is(err, ErrOversized) {
		t.Fatalf("oversized host not rejected: %v", err)
	}
}

// TestChunkedOversizedRejection: MaxFieldBytes turns well-framed but
// bloated lines into positioned ParseErrors wrapping ErrOversized.
func TestChunkedOversizedRejection(t *testing.T) {
	long := "h1 - - [12/Jan/2004:10:30:46 -0500] \"GET /" + strings.Repeat("x", 100) + " HTTP/1.0\" 200 7\n"
	input := chunkedSample + long
	recs, errs := collectChunks(t, strings.NewReader(input), 2, ChunkConfig{Lines: 3, MaxFieldBytes: 64})
	if len(recs) != 5 {
		t.Fatalf("got %d records, want 5", len(recs))
	}
	found := false
	for _, pe := range errs {
		if errors.Is(pe.Err, ErrOversized) {
			found = true
			if pe.LineNumber != 9 {
				t.Fatalf("oversized reject at line %d, want 9", pe.LineNumber)
			}
		}
	}
	if !found {
		t.Fatalf("no ErrOversized among %d errors", len(errs))
	}
}

// TestChunkErrRecIndex: each chunk reports how many records precede
// each malformed line, so consumers can reconstruct true input order.
func TestChunkErrRecIndex(t *testing.T) {
	err := ReadChunksCtx(context.Background(), strings.NewReader(chunkedSample), parallel.NewPool(1), ChunkConfig{Lines: 1024}, func(ch Chunk) error {
		if len(ch.ErrRecIndex) != len(ch.Errs) {
			t.Fatalf("ErrRecIndex len %d, Errs len %d", len(ch.ErrRecIndex), len(ch.Errs))
		}
		// chunkedSample: records at lines 1,2,5,6,8; errors at lines 4,7.
		if ch.ErrRecIndex[0] != 2 || ch.ErrRecIndex[1] != 4 {
			t.Fatalf("ErrRecIndex %v, want [2 4]", ch.ErrRecIndex)
		}
		if ch.Lines != 8 {
			t.Fatalf("chunk consumed %d lines, want 8", ch.Lines)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestChunkedSkipLines: SkipLines discards the prefix while keeping
// global line numbering, and errors out when the input is shorter than
// the resume position.
func TestChunkedSkipLines(t *testing.T) {
	recs, errs := collectChunks(t, strings.NewReader(chunkedSample), 1, ChunkConfig{Lines: 2, SkipLines: 4})
	if len(recs) != 3 {
		t.Fatalf("got %d records after skip, want 3", len(recs))
	}
	if recs[0].Path != "/c" {
		t.Fatalf("first record after skip is %q, want /c", recs[0].Path)
	}
	if len(errs) != 1 || errs[0].LineNumber != 7 {
		t.Fatalf("errors after skip: %+v, want one at line 7", errs)
	}
	err := ReadChunksCtx(context.Background(), strings.NewReader("a\nb\n"), parallel.NewPool(1), ChunkConfig{SkipLines: 10}, func(Chunk) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "resume position") {
		t.Fatalf("short input skip: %v", err)
	}
}

// TestReadFaultPositioned: an injected weblog.read fault surfaces as a
// *ReadError positioned at the last cleanly scanned line.
func TestReadFaultPositioned(t *testing.T) {
	ctx := faultCtx(t, "weblog.read=hit:2")
	var got int
	err := ReadChunksCtx(ctx, strings.NewReader(chunkedSample), parallel.NewPool(1), ChunkConfig{Lines: 3, Window: 1}, func(ch Chunk) error {
		got += len(ch.Records)
		return nil
	})
	var re *ReadError
	if !errors.As(err, &re) {
		t.Fatalf("error %v is not a *ReadError", err)
	}
	if re.Line != 3 {
		t.Fatalf("fault positioned at line %d, want 3", re.Line)
	}
	if !faultpoint.IsFault(err) {
		t.Fatalf("error %v does not wrap the injected fault", err)
	}
}

// TestParseFaultAborts: an injected weblog.parse fault inside the
// concurrent chunk-parse fan-out aborts the scan with a wrapped fault.
func TestParseFaultAborts(t *testing.T) {
	ctx := faultCtx(t, "weblog.parse=hit:1")
	err := ReadChunksCtx(ctx, strings.NewReader(chunkedSample), parallel.NewPool(4), ChunkConfig{Lines: 2}, func(Chunk) error { return nil })
	if err == nil || !faultpoint.IsFault(err) {
		t.Fatalf("parse fault not surfaced: %v", err)
	}
}

// TestTruncatedGzipPositioned: a gzip member cut mid-stream yields a
// positioned *ReadError naming the last good line — never a panic.
func TestTruncatedGzipPositioned(t *testing.T) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write([]byte(chunkedSample)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-10]
	var recs int
	err := ReadChunksCtx(context.Background(), bytes.NewReader(cut), parallel.NewPool(1), ChunkConfig{Lines: 2, Window: 1}, func(ch Chunk) error {
		recs += len(ch.Records)
		return nil
	})
	var re *ReadError
	if !errors.As(err, &re) {
		t.Fatalf("truncated gzip error %v is not a *ReadError", err)
	}
	if re.Line < 0 || !strings.Contains(re.Error(), "reading after line") {
		t.Fatalf("unpositioned read error: %v", re)
	}
}
