package weblog

import (
	"errors"
	"testing"
	"time"
)

const combinedLine = `10.0.0.1 - - [12/Jan/2004:10:30:45 -0500] "GET /page.html HTTP/1.1" 200 5120 "http://example.edu/index.html" "Mozilla/4.0 (compatible; MSIE 6.0)"`

func TestParseCombined(t *testing.T) {
	rec, err := ParseCombined(combinedLine)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Host != "10.0.0.1" || rec.Status != 200 || rec.Bytes != 5120 {
		t.Fatalf("base fields: %+v", rec.Record)
	}
	if rec.Referer != "http://example.edu/index.html" {
		t.Errorf("referer = %q", rec.Referer)
	}
	if rec.UserAgent != "Mozilla/4.0 (compatible; MSIE 6.0)" {
		t.Errorf("agent = %q", rec.UserAgent)
	}
}

func TestParseCombinedDashes(t *testing.T) {
	line := `h - - [12/Jan/2004:10:30:45 -0500] "GET / HTTP/1.0" 200 1 "-" "-"`
	rec, err := ParseCombined(line)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Referer != "" || rec.UserAgent != "" {
		t.Errorf("dash fields should be empty: %q %q", rec.Referer, rec.UserAgent)
	}
}

func TestParseCombinedMalformed(t *testing.T) {
	// Plain CLF without the trailing quoted fields is not Combined.
	if _, err := ParseCombined(sampleLine); !errors.Is(err, ErrMalformed) {
		t.Error("plain CLF should fail combined parsing")
	}
	if _, err := ParseCombined("garbage"); !errors.Is(err, ErrMalformed) {
		t.Error("garbage should fail")
	}
}

func TestFormatCombinedRoundTrip(t *testing.T) {
	rec := CombinedRecord{
		Record: Record{
			Host: "10.9.8.7", Time: time.Date(2004, 4, 12, 8, 0, 0, 0, time.UTC),
			Method: "GET", Path: "/a", Proto: "HTTP/1.1", Status: 304, Bytes: 0,
		},
		Referer:   "http://ref.example/",
		UserAgent: "TestAgent/1.0",
	}
	back, err := ParseCombined(rec.FormatCombined())
	if err != nil {
		t.Fatal(err)
	}
	if back.Referer != rec.Referer || back.UserAgent != rec.UserAgent || back.Host != rec.Host {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	// Empty fields render as dashes and parse back empty.
	rec.Referer, rec.UserAgent = "", ""
	back, err = ParseCombined(rec.FormatCombined())
	if err != nil {
		t.Fatal(err)
	}
	if back.Referer != "" || back.UserAgent != "" {
		t.Fatalf("empty fields round trip: %q %q", back.Referer, back.UserAgent)
	}
}

func TestIsRobot(t *testing.T) {
	robots := []string{
		"Googlebot/2.1 (+http://www.google.com/bot.html)",
		"Mozilla/5.0 (compatible; bingbot/2.0)",
		"msnbot/1.0",
		"Wget/1.12",
		"curl/7.68.0",
		"Scrapy/2.5 (+https://scrapy.org)",
		"Yahoo! Slurp",
		"SomeSpider (crawler@example.com)",
	}
	for _, ua := range robots {
		if !IsRobot(ua) {
			t.Errorf("IsRobot(%q) = false", ua)
		}
	}
	humans := []string{
		"",
		"Mozilla/4.0 (compatible; MSIE 6.0; Windows NT 5.1)",
		"Mozilla/5.0 (X11; Linux x86_64) Gecko/20100101 Firefox/89.0",
		"Lynx/2.8.5rel.1",
	}
	for _, ua := range humans {
		if IsRobot(ua) {
			t.Errorf("IsRobot(%q) = true", ua)
		}
	}
}

func TestFilterRobotsAndBaseRecords(t *testing.T) {
	mk := func(host, agent string) CombinedRecord {
		return CombinedRecord{
			Record: Record{
				Host: host, Time: time.Unix(0, 0),
				Method: "GET", Path: "/", Proto: "HTTP/1.0", Status: 200,
			},
			UserAgent: agent,
		}
	}
	records := []CombinedRecord{
		mk("a", "Mozilla/5.0"),
		mk("b", "Googlebot/2.1"),
		mk("c", ""),
		mk("d", "Wget/1.12"),
	}
	humans, robots := FilterRobots(records)
	if len(humans) != 2 || len(robots) != 2 {
		t.Fatalf("humans=%d robots=%d", len(humans), len(robots))
	}
	base := BaseRecords(humans)
	if len(base) != 2 || base[0].Host != "a" || base[1].Host != "c" {
		t.Fatalf("base = %+v", base)
	}
}
