package weblog

import (
	"errors"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

const sampleLine = `192.168.1.5 - - [12/Jan/2004:10:30:45 -0500] "GET /index.html HTTP/1.0" 200 1043`

func TestParseCLF(t *testing.T) {
	rec, err := ParseCLF(sampleLine)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Host != "192.168.1.5" {
		t.Errorf("host = %q", rec.Host)
	}
	if rec.Method != "GET" || rec.Path != "/index.html" || rec.Proto != "HTTP/1.0" {
		t.Errorf("request = %q %q %q", rec.Method, rec.Path, rec.Proto)
	}
	if rec.Status != 200 || rec.Bytes != 1043 {
		t.Errorf("status/bytes = %d/%d", rec.Status, rec.Bytes)
	}
	want := time.Date(2004, 1, 12, 10, 30, 45, 0, time.FixedZone("", -5*3600))
	if !rec.Time.Equal(want) {
		t.Errorf("time = %v, want %v", rec.Time, want)
	}
}

func TestParseCLFDashBytes(t *testing.T) {
	rec, err := ParseCLF(`host - - [12/Jan/2004:10:30:45 -0500] "GET / HTTP/1.1" 304 -`)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Bytes != 0 {
		t.Errorf("bytes = %d, want 0", rec.Bytes)
	}
	if !rec.BytesMissing {
		t.Error("BytesMissing should be set for a dash size field")
	}
	if rec.IsError() {
		t.Error("304 is not an error")
	}
}

func TestFormatCLFZeroVsMissingBytes(t *testing.T) {
	// A genuine zero-byte response and an unrecorded size are distinct in
	// CLF ("0" vs "-") and must stay distinct through format and parse.
	base := Record{
		Host: "h", Time: time.Date(2004, 1, 12, 10, 30, 45, 0, time.UTC),
		Method: "GET", Path: "/", Proto: "HTTP/1.1", Status: 304,
	}
	zero := base
	line := zero.FormatCLF()
	if !strings.HasSuffix(line, " 304 0") {
		t.Errorf("zero-byte response formatted as %q, want trailing \"304 0\"", line)
	}
	back, err := ParseCLF(line)
	if err != nil {
		t.Fatal(err)
	}
	if back.Bytes != 0 || back.BytesMissing {
		t.Errorf("zero-byte round trip: bytes=%d missing=%v", back.Bytes, back.BytesMissing)
	}
	missing := base
	missing.BytesMissing = true
	line = missing.FormatCLF()
	if !strings.HasSuffix(line, " 304 -") {
		t.Errorf("missing-size response formatted as %q, want trailing \"304 -\"", line)
	}
	if back, err = ParseCLF(line); err != nil {
		t.Fatal(err)
	}
	if !back.BytesMissing || back.Bytes != 0 {
		t.Errorf("missing-size round trip: bytes=%d missing=%v", back.Bytes, back.BytesMissing)
	}
}

func TestParseCLFErrorStatus(t *testing.T) {
	rec, err := ParseCLF(`h - - [12/Jan/2004:10:30:45 -0500] "GET /missing HTTP/1.0" 404 321`)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.IsError() {
		t.Error("404 should be an error")
	}
}

func TestParseCLFMalformed(t *testing.T) {
	bad := []string{
		"",
		"justonefield",
		`h - - 12/Jan/2004:10:30:45 -0500 "GET / HTTP/1.0" 200 1`,      // no brackets
		`h - - [12/Jan/2004:10:30:45 -0500 "GET / HTTP/1.0" 200 1`,     // unterminated bracket
		`h - - [not-a-date] "GET / HTTP/1.0" 200 1`,                    // bad date
		`h - - [12/Jan/2004:10:30:45 -0500] GET / HTTP/1.0 200 1`,      // unquoted request
		`h - - [12/Jan/2004:10:30:45 -0500] "GET /" 200 1`,             // two-part request
		`h - - [12/Jan/2004:10:30:45 -0500] "GET / HTTP/1.0" banana 1`, // bad status
		`h - - [12/Jan/2004:10:30:45 -0500] "GET / HTTP/1.0" 99 1`,     // out-of-range status
		`h - - [12/Jan/2004:10:30:45 -0500] "GET / HTTP/1.0" 200`,      // missing bytes
		`h - - [12/Jan/2004:10:30:45 -0500] "GET / HTTP/1.0" 200 -12`,  // negative bytes
	}
	for _, line := range bad {
		if _, err := ParseCLF(line); !errors.Is(err, ErrMalformed) {
			t.Errorf("ParseCLF(%q) error = %v, want ErrMalformed", line, err)
		}
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	rec := Record{
		Host:   "10.0.0.7",
		Time:   time.Date(2004, 4, 12, 23, 59, 59, 0, time.UTC),
		Method: "POST", Path: "/cgi-bin/form", Proto: "HTTP/1.1",
		Status: 500, Bytes: 98765,
	}
	back, err := ParseCLF(rec.FormatCLF())
	if err != nil {
		t.Fatal(err)
	}
	if back.Host != rec.Host || !back.Time.Equal(rec.Time) || back.Method != rec.Method ||
		back.Path != rec.Path || back.Proto != rec.Proto || back.Status != rec.Status || back.Bytes != rec.Bytes {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, rec)
	}
}

// Property: format→parse is the identity for arbitrary valid records.
func TestFormatParseRoundTripProperty(t *testing.T) {
	f := func(hostRaw uint32, offset int32, status uint16, bytes uint32) bool {
		rec := Record{
			Host:   "10.1." + strconv.Itoa(int(hostRaw%256)) + "." + strconv.Itoa(int(hostRaw/256%256)),
			Time:   time.Unix(1073000000+int64(offset%604800), 0).UTC(),
			Method: "GET", Path: "/x", Proto: "HTTP/1.0",
			Status: 100 + int(status%500),
			Bytes:  int64(bytes),
		}
		back, err := ParseCLF(rec.FormatCLF())
		if err != nil {
			return false
		}
		return back.Host == rec.Host && back.Time.Equal(rec.Time) &&
			back.Status == rec.Status && back.Bytes == rec.Bytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReadAll(t *testing.T) {
	input := sampleLine + "\n" +
		"garbage line\n" +
		"\n" +
		`h2 - - [12/Jan/2004:10:30:46 -0500] "GET /a HTTP/1.0" 200 55` + "\n"
	records, bad, err := ReadAll(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Fatalf("records = %d, want 2", len(records))
	}
	if len(bad) != 1 {
		t.Fatalf("bad = %d, want 1", len(bad))
	}
	if bad[0].LineNumber != 2 {
		t.Errorf("bad line number %d, want 2", bad[0].LineNumber)
	}
	if !errors.Is(bad[0], ErrMalformed) {
		t.Error("ParseError should unwrap to ErrMalformed")
	}
	if bad[0].Error() == "" {
		t.Error("ParseError must describe itself")
	}
}

func TestWriteAllReadAllRoundTrip(t *testing.T) {
	recs := []Record{
		{Host: "a", Time: time.Unix(1000, 0).UTC(), Method: "GET", Path: "/1", Proto: "HTTP/1.0", Status: 200, Bytes: 10},
		{Host: "b", Time: time.Unix(1001, 0).UTC(), Method: "GET", Path: "/2", Proto: "HTTP/1.0", Status: 404, Bytes: 0},
	}
	var sb strings.Builder
	if err := WriteAll(&sb, recs); err != nil {
		t.Fatal(err)
	}
	back, bad, err := ReadAll(strings.NewReader(sb.String()))
	if err != nil || len(bad) != 0 {
		t.Fatalf("read back: %v, %d bad", err, len(bad))
	}
	if len(back) != len(recs) {
		t.Fatalf("got %d records", len(back))
	}
	for i := range recs {
		if back[i].Host != recs[i].Host || back[i].Status != recs[i].Status {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestMerge(t *testing.T) {
	mk := func(sec int64) Record {
		return Record{Host: "h", Time: time.Unix(sec, 0), Method: "GET", Path: "/", Proto: "HTTP/1.0", Status: 200}
	}
	access := []Record{mk(5), mk(1), mk(3)}
	errorLog := []Record{mk(2), mk(4)}
	merged := Merge(access, errorLog)
	if len(merged) != 5 {
		t.Fatalf("merged %d records", len(merged))
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].Time.Before(merged[i-1].Time) {
			t.Fatal("merged records not sorted")
		}
	}
	// Inputs untouched.
	if access[0].Time.Unix() != 5 {
		t.Fatal("Merge modified its input")
	}
}
