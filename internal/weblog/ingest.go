// Hardened-ingestion support: positioned read errors, oversized-field
// rejection, bounded retry-with-backoff for transient opens, and the
// package's fault-injection sites. Real week-long traces arrive with
// truncated gzip rotations, mid-record cuts and transiently missing
// segments; these helpers turn each of those into a measured,
// deterministic outcome instead of a silent loss or a panic
// (DESIGN.md §11).
package weblog

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"fullweb/internal/faultpoint"
	"fullweb/internal/obs"
)

// The package's registered fault-injection sites (see
// internal/faultpoint and the faultguard lint rule):
//
//	weblog.open   — transient file-open failure (exercises OpenRetry)
//	weblog.read   — mid-stream I/O fault between chunk rounds
//	weblog.parse  — crash inside a concurrent chunk-parse task
var (
	fpOpen  = faultpoint.NewSite("weblog.open")
	fpRead  = faultpoint.NewSite("weblog.read")
	fpParse = faultpoint.NewSite("weblog.parse")
)

// ErrOversized marks a record whose host or path field exceeds the
// configured bound — framing survived, but the content is outside the
// envelope real CLF traffic occupies, so hardened ingestion rejects
// (and quarantines) the line rather than feeding it to the analyses.
var ErrOversized = errors.New("weblog: oversized field")

// Oversized reports whether a parsed record breaches the per-field
// byte bound (0 disables the check), returning a descriptive error
// wrapping ErrOversized, or nil.
func Oversized(r Record, maxFieldBytes int) error {
	if maxFieldBytes <= 0 {
		return nil
	}
	if len(r.Host) > maxFieldBytes {
		return fmt.Errorf("%w: host is %d bytes (max %d)", ErrOversized, len(r.Host), maxFieldBytes)
	}
	if len(r.Path) > maxFieldBytes {
		return fmt.Errorf("%w: path is %d bytes (max %d)", ErrOversized, len(r.Path), maxFieldBytes)
	}
	return nil
}

// ReadError is an I/O failure positioned in the input: Line is the
// last input line that was read successfully before the stream broke
// (truncated gzip member, disk fault, injected weblog.read fault).
// Budgeted ingestion treats it as a measurable end-of-input
// (DegradedInput); strict mode surfaces it as-is.
type ReadError struct {
	Line int
	Err  error
}

// Error implements the error interface.
func (e *ReadError) Error() string {
	return fmt.Sprintf("weblog: reading after line %d: %v", e.Line, e.Err)
}

// Unwrap exposes the underlying cause.
func (e *ReadError) Unwrap() error { return e.Err }

// RetryPolicy bounds the retry-with-backoff loop around transient
// file-open faults on rotated segments. Sleeping goes through the
// injected Sleep so tests (and the determinism contract) never touch
// the wall clock; a nil Sleep skips delays entirely.
type RetryPolicy struct {
	// Attempts is the total number of tries (min 1).
	Attempts int
	// Backoff is the delay before the second attempt; it doubles for
	// each further attempt.
	Backoff time.Duration
	// Sleep performs the delay; cmd/ injects time.Sleep, tests inject
	// a recorder. Nil skips delays.
	Sleep func(time.Duration)
}

// DefaultRetryPolicy is the CLI's open-retry policy: three attempts,
// 100ms then 200ms apart.
func DefaultRetryPolicy(sleep func(time.Duration)) RetryPolicy {
	return RetryPolicy{Attempts: 3, Backoff: 100 * time.Millisecond, Sleep: sleep}
}

// OpenRetry opens a log segment, retrying transient failures under
// the policy. Each attempt first consults the weblog.open fault site,
// so tests can force exactly N transient failures. Retries are
// counted on the ingest.open_retries obs counter; the last error is
// returned when every attempt fails.
func OpenRetry(ctx context.Context, path string, policy RetryPolicy) (*os.File, error) {
	attempts := policy.Attempts
	if attempts < 1 {
		attempts = 1
	}
	reg := obs.MetricsFrom(ctx)
	delay := policy.Backoff
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			reg.Counter("ingest.open_retries").Inc()
			if policy.Sleep != nil && delay > 0 {
				policy.Sleep(delay)
			}
			delay *= 2
		}
		if err := fpOpen.Check(ctx); err != nil {
			lastErr = err
			continue
		}
		f, err := os.Open(path)
		if err == nil {
			return f, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("weblog: opening %s after %d attempts: %w", path, attempts, lastErr)
}

// CountingWriter wraps a writer and tracks bytes written — how the
// quarantine sink's offset enters a checkpoint, so resume can
// truncate the file back to the exact recovery point.
type CountingWriter struct {
	W io.Writer
	N int64
}

// Write implements io.Writer.
func (c *CountingWriter) Write(p []byte) (int, error) {
	n, err := c.W.Write(p)
	c.N += int64(n)
	return n, err
}
