package weblog

import (
	"fmt"
	"sort"
	"time"
)

// Store is an in-memory, time-indexed collection of log records — the
// "database tables" stage of the paper's pipeline (Figure 1). Records are
// kept sorted by timestamp, enabling the range and counting queries the
// request- and session-level analyses need.
type Store struct {
	records []Record
}

// NewStore builds a store from records; the input is copied and sorted by
// time.
func NewStore(records []Record) *Store {
	cp := make([]Record, len(records))
	copy(cp, records)
	sort.SliceStable(cp, func(i, j int) bool { return cp[i].Time.Before(cp[j].Time) })
	return &Store{records: cp}
}

// Len returns the number of records.
func (s *Store) Len() int { return len(s.records) }

// All returns the records sorted by time. The caller must not modify the
// returned slice.
func (s *Store) All() []Record { return s.records }

// Span returns the first and last record timestamps.
func (s *Store) Span() (first, last time.Time, err error) {
	if len(s.records) == 0 {
		return time.Time{}, time.Time{}, ErrEmpty
	}
	return s.records[0].Time, s.records[len(s.records)-1].Time, nil
}

// Range returns the records with Time in [from, to). The returned slice
// aliases the store; the caller must not modify it.
func (s *Store) Range(from, to time.Time) []Record {
	lo := sort.Search(len(s.records), func(i int) bool { return !s.records[i].Time.Before(from) })
	hi := sort.Search(len(s.records), func(i int) bool { return !s.records[i].Time.Before(to) })
	return s.records[lo:hi]
}

// TotalBytes returns the sum of response sizes.
func (s *Store) TotalBytes() int64 {
	var sum int64
	for _, r := range s.records {
		sum += r.Bytes
	}
	return sum
}

// ErrorCount returns the number of 4xx/5xx records.
func (s *Store) ErrorCount() int {
	n := 0
	for _, r := range s.records {
		if r.IsError() {
			n++
		}
	}
	return n
}

// CountsPerSecond returns the counting series the paper analyzes: the
// number of requests in each one-second bin from the first record's
// second through the last, inclusive. Empty seconds count zero.
func (s *Store) CountsPerSecond() ([]float64, error) {
	return s.CountsPerBin(time.Second)
}

// CountsPerBin returns the counting series with the given bin width.
func (s *Store) CountsPerBin(bin time.Duration) ([]float64, error) {
	if len(s.records) == 0 {
		return nil, ErrEmpty
	}
	if bin <= 0 {
		return nil, fmt.Errorf("weblog: non-positive bin %v", bin)
	}
	start := s.records[0].Time.Truncate(bin)
	end := s.records[len(s.records)-1].Time
	n := int(end.Sub(start)/bin) + 1
	counts := make([]float64, n)
	for _, r := range s.records {
		idx := int(r.Time.Sub(start) / bin)
		counts[idx]++
	}
	return counts, nil
}

// EventSeconds returns every record timestamp as Unix seconds, sorted —
// the input format of the Poisson test battery.
func (s *Store) EventSeconds() []int64 {
	out := make([]int64, len(s.records))
	for i, r := range s.records {
		out[i] = r.Time.Unix()
	}
	return out
}

// Window is a contiguous time interval with its request count, used for
// the paper's Low/Med/High interval selection.
type Window struct {
	Start    time.Time
	Duration time.Duration
	Requests int
}

// Windows splits the store's span into consecutive intervals of width d
// (the paper uses 42 four-hour windows over one week) and counts the
// requests in each.
func (s *Store) Windows(d time.Duration) ([]Window, error) {
	if len(s.records) == 0 {
		return nil, ErrEmpty
	}
	if d <= 0 {
		return nil, fmt.Errorf("weblog: non-positive window %v", d)
	}
	first, last, err := s.Span()
	if err != nil {
		return nil, err
	}
	start := first.Truncate(d)
	var out []Window
	for t := start; !t.After(last); t = t.Add(d) {
		out = append(out, Window{
			Start:    t,
			Duration: d,
			Requests: len(s.Range(t, t.Add(d))),
		})
	}
	return out, nil
}

// WorkloadLevel identifies the paper's typical interval intensities.
type WorkloadLevel int

const (
	// Low is the least busy typical interval.
	Low WorkloadLevel = iota + 1
	// Med is the median-busy interval.
	Med
	// High is the busiest interval.
	High
)

// String names the level as in the paper's tables.
func (l WorkloadLevel) String() string {
	switch l {
	case Low:
		return "Low"
	case Med:
		return "Med"
	case High:
		return "High"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// SelectTypicalWindows picks typical Low, Med and High windows by total
// request count, as the paper does over its 42 four-hour intervals. The
// first and last windows are excluded when more than four are available
// (they are usually truncated by the trace boundaries and would
// misrepresent "low" as "almost empty"); among the remaining non-empty
// windows, Low is the 10th-percentile window, Med the median, and High
// the maximum.
func (s *Store) SelectTypicalWindows(d time.Duration) (map[WorkloadLevel]Window, error) {
	windows, err := s.Windows(d)
	if err != nil {
		return nil, err
	}
	if len(windows) > 4 {
		windows = windows[1 : len(windows)-1]
	}
	nonEmpty := windows[:0:0]
	for _, w := range windows {
		if w.Requests > 0 {
			nonEmpty = append(nonEmpty, w)
		}
	}
	if len(nonEmpty) < 3 {
		return nil, fmt.Errorf("weblog: only %d non-empty windows; need >= 3", len(nonEmpty))
	}
	sort.Slice(nonEmpty, func(i, j int) bool { return nonEmpty[i].Requests < nonEmpty[j].Requests })
	return map[WorkloadLevel]Window{
		Low:  nonEmpty[len(nonEmpty)/10],
		Med:  nonEmpty[len(nonEmpty)/2],
		High: nonEmpty[len(nonEmpty)-1],
	}, nil
}
