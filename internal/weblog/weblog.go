// Package weblog implements the log-handling substrate of Figure 1 of
// the paper: parsing and writing Common Log Format (CLF) records, merging
// access and error logs from redundant servers, and an in-memory store
// with the time-range and counting queries the analyses are built on.
package weblog

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
	"unicode"
	"unicode/utf8"

	"fullweb/internal/obs"
)

var (
	// ErrMalformed is returned for a line that cannot be parsed as CLF.
	ErrMalformed = errors.New("weblog: malformed log line")
	// ErrEmpty is returned for operations on an empty store.
	ErrEmpty = errors.New("weblog: no records")
)

// clfTime is the CLF timestamp layout.
const clfTime = "02/Jan/2006:15:04:05 -0700"

// Record is one log entry (one HTTP request).
type Record struct {
	// Host is the client IP address or sanitized unique identifier.
	Host string
	// Time is the request timestamp (one-second granularity in CLF).
	Time time.Time
	// Method, Path and Proto are the parsed request line parts.
	Method string
	Path   string
	Proto  string
	// Status is the HTTP response status code.
	Status int
	// Bytes is the response size. A legitimate zero-byte response (e.g. a
	// 304) keeps Bytes == 0 with BytesMissing false; a "-" field in the
	// log sets BytesMissing instead. The two cases are distinct in CLF
	// and must survive a format/parse round trip distinctly.
	Bytes int64
	// BytesMissing reports that the log carried "-" for the size field
	// (the server did not record one).
	BytesMissing bool
}

// IsError reports whether the record's status indicates a failure
// (4xx/5xx), matching the error analysis split of the paper's pipeline.
func (r Record) IsError() bool { return r.Status >= 400 }

// FormatCLF renders the record as a Common Log Format line. Quoted
// fields are written raw, as real servers do; embedded double quotes and
// control characters (which would break the format's framing) are
// replaced by underscores first.
func (r Record) FormatCLF() string {
	bytesField := "-"
	if !r.BytesMissing && r.Bytes >= 0 {
		bytesField = strconv.FormatInt(r.Bytes, 10)
	}
	return fmt.Sprintf("%s - - [%s] \"%s %s %s\" %d %s",
		sanitizeField(r.Host),
		r.Time.Format(clfTime),
		sanitizeField(r.Method), sanitizeField(r.Path), sanitizeField(r.Proto),
		r.Status,
		bytesField,
	)
}

// sanitizeField makes a string safe to embed in a CLF line: double
// quotes, control characters, and (for unquoted fields) spaces would all
// corrupt the framing, so they become underscores.
func sanitizeField(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r == '"' || r < 0x20 || r == 0x7f || r == ' ' {
			b.WriteByte('_')
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}

// sanitizeQuoted is like sanitizeField but keeps spaces, which are legal
// inside the quoted referer/user-agent fields.
func sanitizeQuoted(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r == '"' || (r < 0x20 && r != ' ') || r == 0x7f {
			b.WriteByte('_')
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}

// ParseCLF parses one Common Log Format line:
//
//	host ident authuser [date] "request" status bytes
//
//hot:path — runs once per input line; field splitting is hand-rolled
// (no strings.Fields/Split) to keep the per-record allocation budget
// at the substrings the Record actually retains (DESIGN.md §13).
func ParseCLF(line string) (Record, error) {
	var rec Record
	rest := strings.TrimSpace(line)
	if rest == "" {
		return rec, fmt.Errorf("%w: empty line", ErrMalformed)
	}
	// host
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		return rec, fmt.Errorf("%w: missing fields", ErrMalformed)
	}
	rec.Host = rest[:sp]
	rest = rest[sp+1:]
	// ident authuser: skip two space-delimited fields.
	for i := 0; i < 2; i++ {
		sp = strings.IndexByte(rest, ' ')
		if sp < 0 {
			return rec, fmt.Errorf("%w: missing ident/authuser", ErrMalformed)
		}
		rest = rest[sp+1:]
	}
	// [date]
	if len(rest) == 0 || rest[0] != '[' {
		return rec, fmt.Errorf("%w: missing timestamp bracket", ErrMalformed)
	}
	end := strings.IndexByte(rest, ']')
	if end < 0 {
		return rec, fmt.Errorf("%w: unterminated timestamp", ErrMalformed)
	}
	ts, err := time.Parse(clfTime, rest[1:end])
	if err != nil {
		return rec, fmt.Errorf("%w: timestamp %q: %v", ErrMalformed, rest[1:end], err)
	}
	rec.Time = ts
	rest = strings.TrimPrefix(rest[end+1:], " ")
	// "request"
	if len(rest) == 0 || rest[0] != '"' {
		return rec, fmt.Errorf("%w: missing request quote", ErrMalformed)
	}
	end = strings.IndexByte(rest[1:], '"')
	if end < 0 {
		return rec, fmt.Errorf("%w: unterminated request", ErrMalformed)
	}
	request := rest[1 : 1+end]
	// The request must be exactly three space-separated parts (empty
	// parts are legal, as strings.Split would produce them); splitting by
	// index keeps the hot parse path free of intermediate slices.
	sp1 := strings.IndexByte(request, ' ')
	if sp1 < 0 {
		return rec, fmt.Errorf("%w: request line %q", ErrMalformed, request)
	}
	sp2 := strings.IndexByte(request[sp1+1:], ' ')
	if sp2 < 0 {
		return rec, fmt.Errorf("%w: request line %q", ErrMalformed, request)
	}
	sp2 += sp1 + 1
	if strings.IndexByte(request[sp2+1:], ' ') >= 0 {
		return rec, fmt.Errorf("%w: request line %q", ErrMalformed, request)
	}
	rec.Method, rec.Path, rec.Proto = request[:sp1], request[sp1+1:sp2], request[sp2+1:]
	rest = strings.TrimPrefix(rest[end+2:], " ")
	// status bytes: the first two whitespace-separated fields, with the
	// exact field boundaries strings.Fields would find (unicode spaces
	// included) but without materializing the field slice.
	statusField, next := nextField(rest, 0)
	bytesField, _ := nextField(rest, next)
	if statusField == "" || bytesField == "" {
		return rec, fmt.Errorf("%w: missing status/bytes", ErrMalformed)
	}
	status, err := strconv.Atoi(statusField)
	if err != nil || status < 100 || status > 599 {
		return rec, fmt.Errorf("%w: status %q", ErrMalformed, statusField)
	}
	rec.Status = status
	if bytesField == "-" {
		rec.BytesMissing = true
	} else {
		b, err := strconv.ParseInt(bytesField, 10, 64)
		if err != nil || b < 0 {
			return rec, fmt.Errorf("%w: bytes %q", ErrMalformed, bytesField)
		}
		rec.Bytes = b
	}
	return rec, nil
}

// nextField returns the first whitespace-delimited field of s at or
// after byte offset i, plus the offset just past it. Field boundaries
// are unicode.IsSpace runes — the same split strings.Fields performs —
// so substituting nextField for Fields cannot change which lines parse.
// An empty return means no further field exists.
func nextField(s string, i int) (string, int) {
	for i < len(s) {
		r, size := utf8.DecodeRuneInString(s[i:])
		if !unicode.IsSpace(r) {
			break
		}
		i += size
	}
	start := i
	for i < len(s) {
		r, size := utf8.DecodeRuneInString(s[i:])
		if unicode.IsSpace(r) {
			break
		}
		i += size
	}
	return s[start:i], i
}

// ParseError records a line that failed to parse, with its position.
type ParseError struct {
	LineNumber int
	Line       string
	Err        error
}

// Error implements the error interface.
func (e ParseError) Error() string {
	return fmt.Sprintf("weblog: line %d: %v", e.LineNumber, e.Err)
}

// Unwrap exposes the underlying cause.
func (e ParseError) Unwrap() error { return e.Err }

// ReadAll parses a stream of CLF lines. Malformed lines are collected as
// ParseErrors rather than aborting the scan (real logs always carry some
// noise). The returned records preserve input order.
func ReadAll(r io.Reader) ([]Record, []ParseError, error) {
	return ReadAllCtx(context.Background(), r)
}

// ReadAllCtx is ReadAll under a context carrying observability state: it
// wraps the scan in a weblog.parse span and feeds the
// weblog.records_parsed and weblog.parse_errors counters. Parsing itself
// is identical to ReadAll — instrumentation never changes what is
// computed.
func ReadAllCtx(ctx context.Context, r io.Reader) ([]Record, []ParseError, error) {
	_, sp := obs.StartSpan(ctx, "weblog.parse")
	defer sp.End()
	records, badRecs, err := readAll(r)
	sp.SetInt("records", int64(len(records)))
	sp.SetInt("errors", int64(len(badRecs)))
	reg := obs.MetricsFrom(ctx)
	reg.Counter("weblog.records_parsed").Add(int64(len(records)))
	reg.Counter("weblog.parse_errors").Add(int64(len(badRecs)))
	return records, badRecs, err
}

func readAll(r io.Reader) ([]Record, []ParseError, error) {
	var (
		records []Record
		badRecs []ParseError
	)
	// Rotated production logs arrive gzip-compressed; sniff the magic so
	// every parsing entry point accepts .gz and plain text alike.
	dr, err := MaybeDecompress(r)
	if err != nil {
		return nil, nil, err
	}
	scanner := bufio.NewScanner(dr)
	scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := scanner.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		rec, err := ParseCLF(line)
		if err != nil {
			badRecs = append(badRecs, ParseError{LineNumber: lineNo, Line: line, Err: err})
			continue
		}
		records = append(records, rec)
	}
	if err := scanner.Err(); err != nil {
		return nil, nil, fmt.Errorf("weblog: reading: %w", err)
	}
	return records, badRecs, nil
}

// WriteAll renders records as CLF lines to w.
func WriteAll(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	for _, rec := range records {
		if _, err := bw.WriteString(rec.FormatCLF()); err != nil {
			return fmt.Errorf("weblog: writing: %w", err)
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("weblog: writing: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("weblog: flushing: %w", err)
	}
	return nil
}

// Merge combines multiple record slices (e.g. the access and error logs
// of redundant servers, as WVU and CSEE in the paper) into one slice
// sorted by timestamp. Input slices need not be sorted; they are not
// modified.
func Merge(logs ...[]Record) []Record {
	total := 0
	for _, l := range logs {
		total += len(l)
	}
	out := make([]Record, 0, total)
	for _, l := range logs {
		out = append(out, l...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	return out
}
