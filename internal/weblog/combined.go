package weblog

import (
	"fmt"
	"strings"
)

// CombinedRecord is an NCSA Combined Log Format entry: the CLF fields
// plus referer and user agent. Real server logs (including the ones the
// paper analyzed) usually ship in this format; the extra fields enable
// robot filtering, which workload studies must do before treating each
// IP as a human user.
type CombinedRecord struct {
	Record
	Referer   string
	UserAgent string
}

// ParseCombined parses one Combined Log Format line:
//
//	host ident authuser [date] "request" status bytes "referer" "user-agent"
func ParseCombined(line string) (CombinedRecord, error) {
	var rec CombinedRecord
	base, err := ParseCLF(line)
	if err != nil {
		return rec, err
	}
	rec.Record = base
	// The two trailing quoted fields.
	rest := line
	var quoted []string
	for i := 0; i < len(rest); {
		start := strings.IndexByte(rest[i:], '"')
		if start < 0 {
			break
		}
		start += i
		end := strings.IndexByte(rest[start+1:], '"')
		if end < 0 {
			return rec, fmt.Errorf("%w: unterminated quote", ErrMalformed)
		}
		end += start + 1
		quoted = append(quoted, rest[start+1:end])
		i = end + 1
	}
	// quoted[0] is the request line; referer and user agent follow.
	if len(quoted) < 3 {
		return rec, fmt.Errorf("%w: combined format needs referer and user-agent", ErrMalformed)
	}
	rec.Referer = dashEmpty(quoted[1])
	rec.UserAgent = dashEmpty(quoted[2])
	return rec, nil
}

func dashEmpty(s string) string {
	if s == "-" {
		return ""
	}
	return s
}

// FormatCombined renders the record as a Combined Log Format line.
// Referer and user agent are written raw with quotes and control
// characters sanitized, matching how servers write these fields.
func (r CombinedRecord) FormatCombined() string {
	return fmt.Sprintf("%s \"%s\" \"%s\"", r.Record.FormatCLF(),
		dashIfEmpty(sanitizeQuoted(r.Referer)), dashIfEmpty(sanitizeQuoted(r.UserAgent)))
}

func dashIfEmpty(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// robotMarkers are case-insensitive user-agent substrings identifying
// crawlers; the classic suspects plus the generic "bot"/"crawler"/
// "spider" conventions.
var robotMarkers = []string{
	"bot", "crawler", "spider", "slurp", "archiver", "wget", "curl",
	"libwww", "python-requests", "scrapy", "httpclient", "feedfetcher",
}

// IsRobot reports whether the user agent looks like an automated
// client. An empty user agent is not classified as a robot (CLF logs
// without agents would otherwise lose everything).
func IsRobot(userAgent string) bool {
	if userAgent == "" {
		return false
	}
	ua := strings.ToLower(userAgent)
	for _, marker := range robotMarkers {
		if strings.Contains(ua, marker) {
			return true
		}
	}
	return false
}

// FilterRobots splits combined records into human and robot traffic by
// user agent. Workload characterizations run on the human share;
// crawler sessions have radically different inter-request timing and
// would distort every session-level distribution.
func FilterRobots(records []CombinedRecord) (humans, robots []CombinedRecord) {
	for _, r := range records {
		if IsRobot(r.UserAgent) {
			robots = append(robots, r)
		} else {
			humans = append(humans, r)
		}
	}
	return humans, robots
}

// BaseRecords projects combined records onto plain CLF records for the
// analysis pipeline.
func BaseRecords(records []CombinedRecord) []Record {
	out := make([]Record, len(records))
	for i, r := range records {
		out[i] = r.Record
	}
	return out
}
