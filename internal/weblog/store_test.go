package weblog

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func mkRec(sec int64, host string, status int, bytes int64) Record {
	return Record{
		Host: host, Time: time.Unix(sec, 0).UTC(),
		Method: "GET", Path: "/", Proto: "HTTP/1.0",
		Status: status, Bytes: bytes,
	}
}

func TestStoreBasics(t *testing.T) {
	recs := []Record{
		mkRec(30, "a", 200, 100),
		mkRec(10, "b", 404, 50),
		mkRec(20, "a", 200, 25),
	}
	s := NewStore(recs)
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	first, last, err := s.Span()
	if err != nil {
		t.Fatal(err)
	}
	if first.Unix() != 10 || last.Unix() != 30 {
		t.Fatalf("span = %v..%v", first, last)
	}
	if s.TotalBytes() != 175 {
		t.Fatalf("bytes = %d", s.TotalBytes())
	}
	if s.ErrorCount() != 1 {
		t.Fatalf("errors = %d", s.ErrorCount())
	}
	// Input untouched (copy at boundary).
	if recs[0].Time.Unix() != 30 {
		t.Fatal("NewStore must not reorder its input")
	}
}

func TestStoreEmpty(t *testing.T) {
	s := NewStore(nil)
	if _, _, err := s.Span(); !errors.Is(err, ErrEmpty) {
		t.Error("empty Span should return ErrEmpty")
	}
	if _, err := s.CountsPerSecond(); !errors.Is(err, ErrEmpty) {
		t.Error("empty CountsPerSecond should return ErrEmpty")
	}
	if _, err := s.Windows(time.Hour); !errors.Is(err, ErrEmpty) {
		t.Error("empty Windows should return ErrEmpty")
	}
}

func TestStoreRange(t *testing.T) {
	var recs []Record
	for sec := int64(0); sec < 100; sec++ {
		recs = append(recs, mkRec(sec, "h", 200, 1))
	}
	s := NewStore(recs)
	got := s.Range(time.Unix(10, 0).UTC(), time.Unix(20, 0).UTC())
	if len(got) != 10 {
		t.Fatalf("range size %d, want 10", len(got))
	}
	if got[0].Time.Unix() != 10 || got[9].Time.Unix() != 19 {
		t.Fatalf("range bounds wrong: %v..%v", got[0].Time, got[9].Time)
	}
	if len(s.Range(time.Unix(200, 0), time.Unix(300, 0))) != 0 {
		t.Fatal("out-of-span range should be empty")
	}
}

func TestCountsPerSecond(t *testing.T) {
	recs := []Record{
		mkRec(100, "a", 200, 1),
		mkRec(100, "b", 200, 1),
		mkRec(102, "c", 200, 1),
	}
	s := NewStore(recs)
	counts, err := s.CountsPerSecond()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 0, 1}
	if len(counts) != len(want) {
		t.Fatalf("len = %d, want %d", len(counts), len(want))
	}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts[%d] = %v, want %v", i, counts[i], want[i])
		}
	}
}

func TestCountsPerBinValidation(t *testing.T) {
	s := NewStore([]Record{mkRec(1, "a", 200, 1)})
	if _, err := s.CountsPerBin(0); err == nil {
		t.Error("zero bin should error")
	}
}

func TestEventSeconds(t *testing.T) {
	s := NewStore([]Record{mkRec(5, "a", 200, 1), mkRec(3, "b", 200, 1)})
	secs := s.EventSeconds()
	if len(secs) != 2 || secs[0] != 3 || secs[1] != 5 {
		t.Fatalf("secs = %v", secs)
	}
}

func TestWindowsAndTypicalSelection(t *testing.T) {
	// Three hours with 10, 50 and 200 requests respectively, then a gap
	// hour with none.
	var recs []Record
	addBurst := func(startSec int64, n int) {
		for i := 0; i < n; i++ {
			recs = append(recs, mkRec(startSec+int64(i*3600/n), "h", 200, 1))
		}
	}
	addBurst(0, 10)
	addBurst(3600, 50)
	addBurst(7200, 200)
	s := NewStore(recs)
	windows, err := s.Windows(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(windows) != 3 {
		t.Fatalf("windows = %d, want 3", len(windows))
	}
	if windows[0].Requests != 10 || windows[1].Requests != 50 || windows[2].Requests != 200 {
		t.Fatalf("window counts = %v", windows)
	}
	typical, err := s.SelectTypicalWindows(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if typical[Low].Requests != 10 || typical[Med].Requests != 50 || typical[High].Requests != 200 {
		t.Fatalf("typical = %+v", typical)
	}
}

func TestSelectTypicalWindowsTooFew(t *testing.T) {
	s := NewStore([]Record{mkRec(0, "a", 200, 1)})
	if _, err := s.SelectTypicalWindows(time.Hour); err == nil {
		t.Error("single window should error")
	}
}

func TestWorkloadLevelString(t *testing.T) {
	if Low.String() != "Low" || Med.String() != "Med" || High.String() != "High" {
		t.Error("level names wrong")
	}
	if WorkloadLevel(9).String() == "" {
		t.Error("unknown level should stringify")
	}
}

// Property: the counting series sums to the record count, regardless of
// record distribution.
func TestCountsSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		recs := make([]Record, n)
		for i := range recs {
			recs[i] = mkRec(int64(rng.Intn(5000)), "h", 200, 1)
		}
		s := NewStore(recs)
		counts, err := s.CountsPerSecond()
		if err != nil {
			return false
		}
		total := 0.0
		for _, c := range counts {
			total += c
		}
		return int(total) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
