package weblog

import (
	"bytes"
	"compress/gzip"
	"context"
	"errors"
	"strings"
	"testing"

	"fullweb/internal/parallel"
)

// FuzzChunkedIngest feeds arbitrary bytes — including truncated and
// corrupt gzip members — through the chunked reader and asserts the
// hardened-ingestion contract: never a panic; every failure is either
// a positioned *ReadError or a gzip header error; and on success the
// parse outcome (record/error counts, error positions, ErrRecIndex
// interleaving invariants) is identical across chunk geometries.
func FuzzChunkedIngest(f *testing.F) {
	gz := func(s string) []byte {
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		zw.Write([]byte(s))
		zw.Close()
		return buf.Bytes()
	}
	whole := gz(chunkedSample)
	f.Add([]byte(chunkedSample))
	f.Add(whole)
	f.Add(whole[:len(whole)-12])    // truncated gzip: checksum cut off
	f.Add(whole[:len(whole)/2])     // mid-record cut inside the deflate stream
	f.Add([]byte{0x1f, 0x8b})       // bare gzip magic, no header
	f.Add([]byte{0x1f, 0x8b, 0xff}) // corrupt gzip header
	f.Add([]byte("h1 - - [12/Jan/2004:10:30:45 -0500] \"GET /a HTTP/1.0\" 200 100\ncut mid-rec"))
	f.Fuzz(func(t *testing.T, data []byte) {
		type outcome struct {
			recs     int
			errLines []int
		}
		run := func(cfg ChunkConfig) (outcome, error) {
			var out outcome
			err := ReadChunksCtx(context.Background(), bytes.NewReader(data), parallel.NewPool(1), cfg, func(ch Chunk) error {
				if len(ch.ErrRecIndex) != len(ch.Errs) {
					t.Fatalf("ErrRecIndex len %d vs Errs len %d", len(ch.ErrRecIndex), len(ch.Errs))
				}
				prev := 0
				for _, idx := range ch.ErrRecIndex {
					if idx < prev || idx > len(ch.Records) {
						t.Fatalf("ErrRecIndex %v not monotone within [0,%d]", ch.ErrRecIndex, len(ch.Records))
					}
					prev = idx
				}
				out.recs += len(ch.Records)
				for _, pe := range ch.Errs {
					out.errLines = append(out.errLines, pe.LineNumber)
				}
				return nil
			})
			return out, err
		}
		a, errA := run(ChunkConfig{Lines: 3, Window: 2, MaxFieldBytes: 256})
		b, errB := run(ChunkConfig{Lines: 64, Window: 1, MaxFieldBytes: 256})
		if (errA == nil) != (errB == nil) {
			t.Fatalf("chunk geometry changed failure: %v vs %v", errA, errB)
		}
		if errA != nil {
			var re *ReadError
			if errors.As(errA, &re) {
				if re.Line < 0 {
					t.Fatalf("ReadError with negative position: %v", re)
				}
			} else if !strings.Contains(errA.Error(), "gzip header") {
				t.Fatalf("failure is neither positioned nor a gzip header error: %v", errA)
			}
			return
		}
		if a.recs != b.recs || len(a.errLines) != len(b.errLines) {
			t.Fatalf("geometry changed outcome: %+v vs %+v", a, b)
		}
		for i := range a.errLines {
			if a.errLines[i] != b.errLines[i] {
				t.Fatalf("error %d at line %d vs %d", i, a.errLines[i], b.errLines[i])
			}
		}
	})
}
