// Intake-path benchmark triple (PR 9 evidence, BENCH_pr9.json): the
// same CLF bytes through the stream engine three ways — straight from
// a file reader, through the serve HTTP /ingest path, and through the
// raw TCP intake — at 1 and 4 shards. All report records/sec; the
// acceptance bar is HTTP and TCP intake within 20% of the file path,
// i.e. the intake queue and transport framing are not the bottleneck.
//
//	make bench-intake
package fullweb_test

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"testing"

	"fullweb/internal/serve"
	"fullweb/internal/stream"
)

// benchIntakeConfig is the shared engine geometry: final snapshot
// only, so the measurement is intake + fold, not rendering.
func benchIntakeConfig(shards int) stream.Config {
	cfg := stream.DefaultConfig()
	cfg.SnapshotEvery = 0
	cfg.Shards = shards
	return cfg
}

// BenchmarkIntakeFile is the baseline: the trace folded straight from
// an in-memory reader, no intake queue.
func BenchmarkIntakeFile(b *testing.B) {
	text := benchStreamTrace(b)
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			var records int64
			b.SetBytes(int64(len(text)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng, err := stream.NewEngine(benchIntakeConfig(shards))
				if err != nil {
					b.Fatal(err)
				}
				final, err := eng.ProcessCtx(context.Background(), bytes.NewReader(text), nil)
				if err != nil {
					b.Fatal(err)
				}
				records = final.Records
			}
			reportRecordsPerSec(b, records)
		})
	}
}

// benchServeRun pushes the trace through one serve run using feed to
// deliver the bytes, returning the folded record count.
func benchServeRun(b *testing.B, shards int, tcp bool, feed func(base, tcpAddr string)) int64 {
	b.Helper()
	s, err := serve.New(serve.Config{
		Sources: []string{"bench"},
		WantTCP: tcp,
		Engine:  benchIntakeConfig(shards),
	})
	if err != nil {
		b.Fatal(err)
	}
	hln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	s.StartHTTP(hln)
	defer s.Close()
	tcpAddr := ""
	if tcp {
		tln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		s.StartTCP(tln)
		tcpAddr = tln.Addr().String()
	}
	type result struct {
		records int64
		err     error
	}
	ch := make(chan result, 1)
	go func() {
		final, rerr := s.Run(context.Background(), nil)
		if rerr != nil {
			ch <- result{err: rerr}
			return
		}
		ch <- result{records: final.Records}
	}()
	feed("http://"+hln.Addr().String(), tcpAddr)
	res := <-ch
	if res.err != nil {
		b.Fatal(res.err)
	}
	return res.records
}

// BenchmarkIntakeHTTP measures the POST /ingest path: the trace
// delivered in 256 KiB chunked posts to one source, then completed.
func BenchmarkIntakeHTTP(b *testing.B) {
	text := benchStreamTrace(b)
	const chunk = 256 << 10
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			var records int64
			b.SetBytes(int64(len(text)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				records = benchServeRun(b, shards, false, func(base, _ string) {
					client := &http.Client{}
					for off := 0; off < len(text); off += chunk {
						end := off + chunk
						if end > len(text) {
							end = len(text)
						}
						resp, err := client.Post(base+"/ingest?source=bench", "text/plain", bytes.NewReader(text[off:end]))
						if err != nil {
							b.Fatal(err)
						}
						resp.Body.Close()
						if resp.StatusCode != http.StatusOK {
							b.Fatalf("ingest chunk: status %d", resp.StatusCode)
						}
					}
					resp, err := client.Post(base+"/ingest?source=bench&complete=1", "text/plain", nil)
					if err != nil {
						b.Fatal(err)
					}
					resp.Body.Close()
				})
			}
			reportRecordsPerSec(b, records)
		})
	}
}

// BenchmarkIntakeTCP measures the raw TCP intake: handshake, stream
// the bytes over one connection, close to complete.
func BenchmarkIntakeTCP(b *testing.B) {
	text := benchStreamTrace(b)
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			var records int64
			b.SetBytes(int64(len(text)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				records = benchServeRun(b, shards, true, func(_, tcpAddr string) {
					conn, err := net.Dial("tcp", tcpAddr)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := fmt.Fprintf(conn, "fullweb-intake bench\n"); err != nil {
						b.Fatal(err)
					}
					if _, err := conn.Write(text); err != nil {
						b.Fatal(err)
					}
					conn.Close()
				})
			}
			reportRecordsPerSec(b, records)
		})
	}
}
