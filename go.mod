module fullweb

go 1.22
