// Streaming-vs-batch benchmark pair (PR 4 evidence, BENCH_pr4.json):
// the same CLF bytes through the batch pipeline (full-trace slice +
// sessionize + estimators) and the streaming engine (chunked parse +
// online estimators). Both report records/sec; -benchmem captures the
// allocation gap, which is the point — the stream path never holds the
// trace.
//
//	make bench-stream
package fullweb_test

import (
	"bytes"
	"context"
	"testing"

	"fullweb/internal/heavytail"
	"fullweb/internal/lrd"
	"fullweb/internal/session"
	"fullweb/internal/stream"
	"fullweb/internal/weblog"
	"fullweb/internal/workload"
)

// benchStreamTrace renders one deterministic three-day trace to CLF
// bytes, shared by both benchmark halves.
func benchStreamTrace(b *testing.B) []byte {
	b.Helper()
	trace, err := workload.Generate(workload.NASAPub2(), workload.Config{Scale: 0.5, Seed: benchSeed, Days: 3})
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := weblog.WriteAll(&buf, trace.Records); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

func reportRecordsPerSec(b *testing.B, records int64) {
	b.Helper()
	b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkStreamVsBatchBatch is the batch half: parse everything into
// memory, sessionize, then run the same estimator families the stream
// engine maintains online (aggregated-variance Hurst on the per-second
// series, Hill on the three session characteristics).
func BenchmarkStreamVsBatchBatch(b *testing.B) {
	text := benchStreamTrace(b)
	var records int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recs, _, err := weblog.ReadAll(bytes.NewReader(text))
		if err != nil {
			b.Fatal(err)
		}
		records = int64(len(recs))
		store := weblog.NewStore(recs)
		sessions, err := session.Sessionize(recs, session.DefaultThreshold)
		if err != nil {
			b.Fatal(err)
		}
		counts, err := store.CountsPerSecond()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := lrd.EstimateAggregatedVariance(counts); err != nil {
			b.Fatal(err)
		}
		for _, values := range [][]float64{
			session.Durations(sessions),
			session.RequestCounts(sessions),
			session.ByteCounts(sessions),
		} {
			if _, err := heavytail.EstimateHill(session.PositiveOnly(values),
				heavytail.DefaultHillTailFraction, heavytail.DefaultHillRelTol); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	reportRecordsPerSec(b, records)
}

// BenchmarkStreamVsBatchStream is the streaming half: the engine's
// bounded-memory pipeline over the identical bytes, final snapshot
// only.
func BenchmarkStreamVsBatchStream(b *testing.B) {
	text := benchStreamTrace(b)
	cfg := stream.DefaultConfig()
	cfg.SnapshotEvery = 0
	var records int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := stream.NewEngine(cfg)
		if err != nil {
			b.Fatal(err)
		}
		final, err := eng.ProcessCtx(context.Background(), bytes.NewReader(text), nil)
		if err != nil {
			b.Fatal(err)
		}
		records = final.Records
	}
	b.StopTimer()
	reportRecordsPerSec(b, records)
}

// BenchmarkShardedStream is the PR 6 evidence pair (BENCH_pr6.json):
// the identical bytes through the engine at one shard and at four.
// The gate is "no regression at -shards 1" — sharding adds a host hash
// and a merge at snapshot time, and the single-shard path must keep
// bypassing both. The sharded run buys partition-ready state (per-shard
// mergeable sketches), not throughput: parsing, not folding, bounds
// this pipeline.
func benchShardedStream(b *testing.B, shards int) {
	text := benchStreamTrace(b)
	cfg := stream.DefaultConfig()
	cfg.SnapshotEvery = 0
	cfg.Shards = shards
	var records int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := stream.NewEngine(cfg)
		if err != nil {
			b.Fatal(err)
		}
		final, err := eng.ProcessCtx(context.Background(), bytes.NewReader(text), nil)
		if err != nil {
			b.Fatal(err)
		}
		records = final.Records
	}
	b.StopTimer()
	reportRecordsPerSec(b, records)
}

func BenchmarkShardedStream1(b *testing.B) { benchShardedStream(b, 1) }

func BenchmarkShardedStream4(b *testing.B) { benchShardedStream(b, 4) }
