// Quickstart: synthesize a small Web trace, run the FULL-Web
// characterization pipeline on it, and print the highlights — the
// five-estimator Hurst battery, the Poisson verdicts, and the
// heavy-tail table for session length.
//
//	go run ./examples/quickstart
//	go run ./examples/quickstart -progress -trace trace.jsonl
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"fullweb/internal/core"
	"fullweb/internal/obs"
	"fullweb/internal/report"
	"fullweb/internal/weblog"
	"fullweb/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatal("quickstart: ", err)
	}
}

func run() (err error) {
	var obsCfg obs.CLIConfig
	obsCfg.RegisterFlags(flag.CommandLine)
	flag.Parse()
	sess, err := obsCfg.Start(obs.SystemClock(), os.Stderr)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := sess.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	ctx := sess.Context(context.Background())

	// 1. Generate one week of synthetic NASA-Pub2-like traffic (the
	//    paper's lightest server, so the whole example runs in seconds).
	trace, err := workload.Generate(workload.NASAPub2(), workload.Config{Scale: 1, Seed: 42})
	if err != nil {
		return err
	}
	fmt.Printf("generated %s requests across %s sessions\n",
		report.Count(int64(len(trace.Records))), report.Count(int64(trace.PlantedSessions)))

	// 2. Run the full pipeline: request- and session-level arrival
	//    analysis, Poisson batteries, and the heavy-tail tables.
	cfg := core.DefaultConfig()
	cfg.Metrics = sess.Metrics
	analyzer, err := core.NewAnalyzer(cfg)
	if err != nil {
		return err
	}
	model, err := analyzer.AnalyzeCtx(ctx, trace.Profile.Name, weblog.NewStore(trace.Records))
	if err != nil {
		return err
	}

	// 3. Highlights.
	fmt.Println("\nHurst exponents of the stationary request arrival series:")
	tb := report.NewTable("estimator", "H", "LRD?")
	for _, e := range model.RequestArrivals.StationaryHurst.Estimates {
		tb.AddRow(e.Method.String(), report.F(e.H), fmt.Sprint(e.Indicates()))
	}
	fmt.Print(tb.String())

	if st := model.RequestArrivals.Stationarity; st.TrendRemoved || st.PeriodRemoved {
		higher, total := model.RequestArrivals.OverestimationCount()
		fmt.Printf("\nraw series gave a higher H for %d of %d estimators (trend/periodicity inflate LRD)\n", higher, total)
	} else {
		fmt.Println("\nrequest series already stationary (KPSS): no trend/periodicity to remove")
	}

	fmt.Println("\nPoisson battery on request arrivals (paper: rejected everywhere):")
	for _, level := range []weblog.WorkloadLevel{weblog.Low, weblog.Med, weblog.High} {
		pa, ok := model.RequestPoisson[level]
		if !ok {
			continue
		}
		verdict := "rejected"
		if pa.Accepted() {
			verdict = "accepted"
		}
		fmt.Printf("  %-4s window: %s (%d events)\n", level, verdict, pa.Events)
	}

	fmt.Println("\nSession length heavy-tail analysis (paper Table 2):")
	tb = report.NewTable("interval", "n", "alpha_LLCD", "R^2", "class")
	rows := model.Tails[core.CharSessionLength].Rows
	intervals := make([]string, 0, len(rows))
	for interval := range rows {
		intervals = append(intervals, interval)
	}
	sort.Strings(intervals)
	for _, interval := range intervals {
		row := rows[interval]
		if row.Status == core.TailNA {
			tb.AddRow(interval, fmt.Sprint(row.N), "NA", "NA", "too few sessions")
			continue
		}
		tb.AddRow(interval, fmt.Sprint(row.N), report.F(row.LLCD.Alpha), report.F(row.LLCD.R2), row.LLCD.Class().String())
	}
	fmt.Print(tb.String())

	fmt.Fprintln(os.Stderr, "\nok")
	return nil
}
