// Admission-control example: what the paper's Section 5.2.1 finding
// means in practice.
//
// Session-based admission control (Cherkasova & Phaal) caps the number
// of concurrent sessions. The original simulations assumed
// exponentially distributed session lengths; the paper shows session
// length is heavy-tailed (Pareto, often with infinite variance). This
// example runs the same loss system under both assumptions with equal
// mean session length and equal arrival rate.
//
// The punchline is subtle and worth seeing numerically: the overall
// blocking probability barely moves (Erlang-B is insensitive to the
// session-length distribution — the example prints the analytic value
// next to both simulations), but rejections stop being spread evenly in
// time. A few enormous sessions occupy slots for hours, the occupancy
// process acquires long memory, and rejections arrive in prolonged
// clusters. Capacity planning from the exponential model gets the
// average right and the outages wrong.
//
//	go run ./examples/admission
package main

import (
	"fmt"
	"log"

	"fullweb/internal/admission"
	"fullweb/internal/dist"
	"fullweb/internal/report"
)

const (
	capacity    = 40
	arrivalRate = 0.083   // sessions per second (offered load ~30 erlang)
	meanLength  = 360.0   // mean session length, seconds
	horizon     = 8000000 // simulated seconds (~92 days)
	seed        = 7
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatal("admission: ", err)
	}
}

func run() error {
	// Exponential assumption of the original admission-control papers.
	exponential, err := dist.NewExponential(1 / meanLength)
	if err != nil {
		return err
	}
	// The paper's finding: Pareto with alpha in (1, 2) — finite mean,
	// infinite variance. alpha=1.35 keeps the mean at meanLength.
	pareto, err := dist.NewPareto(1.35, meanLength*0.35/1.35)
	if err != nil {
		return err
	}
	offered := arrivalRate * meanLength
	analytic, err := admission.ErlangB(offered, capacity)
	if err != nil {
		return err
	}
	fmt.Printf("loss system: capacity=%d, lambda=%.3f/s, mean session=%.0fs, offered load=%.1f erlang\n",
		capacity, arrivalRate, meanLength, offered)
	fmt.Printf("Erlang-B blocking (distribution-independent): %.4f\n\n", analytic)

	tb := report.NewTable("session length model", "arrivals", "blocking",
		"hourly-rejection dispersion", "max in one hour", "longest rejecting streak (h)")
	for i, m := range []struct {
		label string
		d     dist.Continuous
	}{
		{"exponential (assumed in [5],[6])", exponential},
		{"Pareto alpha=1.35 (measured, Table 2)", pareto},
	} {
		res, err := admission.Simulate(admission.Config{
			Capacity:      capacity,
			ArrivalRate:   arrivalRate,
			SessionLength: m.d,
			Horizon:       horizon,
			Seed:          seed + int64(i),
		})
		if err != nil {
			return err
		}
		tb.AddRow(m.label,
			report.Count(int64(res.Arrivals)),
			fmt.Sprintf("%.4f", res.BlockingProbability()),
			report.F2(res.RejectionDispersion()),
			fmt.Sprintf("%.0f", res.MaxHourlyRejections()),
			fmt.Sprint(res.LongestRejectingStreak()))
	}
	fmt.Print(tb.String())

	fmt.Println("\nreading: blocking probabilities match each other and Erlang-B (insensitivity")
	fmt.Println("to the service distribution), but under heavy-tailed session lengths the")
	fmt.Println("rejections cluster: hourly counts are far more dispersed and outage streaks")
	fmt.Println("far longer — tail risk an exponential-based capacity plan never sees.")
	return nil
}
