// Capacity-planning example: why Section 4.2's rejection of Poisson
// arrivals matters.
//
// The paper notes that Web performance models built on queueing networks
// assume Poisson request arrivals and "most likely provide misleading
// results". This example sizes a server with the analytic M/M/1 model,
// then feeds the internal/queueing fluid queue with two arrival
// processes of identical mean rate — homogeneous Poisson, and a
// long-range dependent process (fGn-modulated, H=0.85, as measured on
// the stationary request series) — and compares what actually happens
// at the same utilization.
//
//	go run ./examples/capacity
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"fullweb/internal/dist"
	"fullweb/internal/fgn"
	"fullweb/internal/queueing"
	"fullweb/internal/report"
)

const (
	meanRate    = 50.0    // requests per second
	utilization = 0.8     // server sized for rho = 0.8
	horizon     = 1 << 19 // seconds simulated (~6 days)
	hurst       = 0.85
	seed        = 11
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatal("capacity: ", err)
	}
}

func poissonCounts(rng *rand.Rand, n int) ([]float64, error) {
	out := make([]float64, n)
	for i := range out {
		k, err := dist.PoissonSample(rng, meanRate)
		if err != nil {
			return nil, err
		}
		out[i] = float64(k)
	}
	return out, nil
}

// lrdCounts builds a doubly stochastic Poisson series whose intensity is
// lognormal-fGn modulated — the arrival structure the paper measured.
func lrdCounts(rng *rand.Rand, n int) ([]float64, error) {
	noise, err := fgn.Generate(rng, hurst, n)
	if err != nil {
		return nil, err
	}
	const sigma = 0.5
	out := make([]float64, n)
	for i := range out {
		intensity := meanRate * math.Exp(sigma*noise[i]-sigma*sigma/2)
		k, err := dist.PoissonSample(rng, intensity)
		if err != nil {
			return nil, err
		}
		out[i] = float64(k)
	}
	return out, nil
}

func run() error {
	serviceRate := meanRate / utilization
	// What the analytic Poisson model promises at this utilization.
	mm1, err := queueing.NewMM1(meanRate, serviceRate)
	if err != nil {
		return err
	}
	p99, err := mm1.QueueLengthQuantile(0.99)
	if err != nil {
		return err
	}
	fmt.Printf("fluid queue: service=%.0f req/s, target utilization=%.0f%%, horizon=%s s\n",
		serviceRate, utilization*100, report.Count(int64(horizon)))
	fmt.Printf("analytic M/M/1 promise: mean queue %.1f, p99 queue %d\n\n",
		mm1.MeanQueueLength(), p99)

	rng := rand.New(rand.NewSource(seed))
	poisson, err := poissonCounts(rng, horizon)
	if err != nil {
		return err
	}
	lrd, err := lrdCounts(rng, horizon)
	if err != nil {
		return err
	}

	tb := report.NewTable("arrival process", "utilization", "backlog mean", "backlog p99", "backlog max", "busy fraction")
	for _, c := range []struct {
		label  string
		counts []float64
	}{
		{"Poisson (queueing-model assumption)", poisson},
		{fmt.Sprintf("LRD, H=%.2f (measured shape)", hurst), lrd},
	} {
		res, err := queueing.FluidQueue(c.counts, serviceRate)
		if err != nil {
			return err
		}
		tb.AddRow(c.label, report.F2(res.Utilization), report.F2(res.MeanBacklog),
			report.F2(res.P99Backlog), report.F2(res.MaxBacklog), report.F2(res.BusyFraction))
	}
	fmt.Print(tb.String())
	fmt.Println("\nreading: at the same utilization the LRD arrivals build backlogs orders of")
	fmt.Println("magnitude deeper than the Poisson model predicts — the 'misleading results'")
	fmt.Println("the paper warns about in Section 4.2.")
	return nil
}
