// Log-analysis example: characterize an on-disk Common Log Format file
// the way the paper characterizes its four server logs.
//
//	go run ./examples/loganalysis [access.log]
//
// Without an argument the example first writes a synthetic CSEE-like log
// to a temporary file, then analyzes that file — so it doubles as a
// demonstration of the CLF round trip.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"fullweb/internal/lrd"
	"fullweb/internal/report"
	"fullweb/internal/session"
	"fullweb/internal/stats"
	"fullweb/internal/weblog"
	"fullweb/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.SetFlags(0)
		log.Fatal("loganalysis: ", err)
	}
}

func run(args []string) error {
	path := ""
	if len(args) > 0 {
		path = args[0]
	} else {
		generated, err := writeSampleLog()
		if err != nil {
			return err
		}
		defer os.Remove(generated)
		path = generated
		fmt.Printf("no log given; generated a synthetic CSEE-like trace at %s\n\n", path)
	}

	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	records, bad, err := weblog.ReadAll(f)
	if err != nil {
		return err
	}
	fmt.Printf("parsed %s records (%d malformed lines skipped)\n",
		report.Count(int64(len(records))), len(bad))
	if len(records) == 0 {
		return fmt.Errorf("nothing to analyze")
	}
	store := weblog.NewStore(records)
	first, last, err := store.Span()
	if err != nil {
		return err
	}
	fmt.Printf("span %v .. %v; %s bytes; %d error responses\n\n",
		first.Format("2006-01-02 15:04"), last.Format("2006-01-02 15:04"),
		report.Count(store.TotalBytes()), store.ErrorCount())

	// Request arrival process: quick Hurst battery on the counting series.
	counts, err := store.CountsPerSecond()
	if err != nil {
		return err
	}
	fmt.Printf("requests/second: %s\n", report.Sparkline(counts, 80))
	if battery, err := lrd.RunBattery(counts); err == nil {
		tb := report.NewTable("estimator", "H", "indicates LRD")
		for _, e := range battery.Estimates {
			tb.AddRow(e.Method.String(), report.F(e.H), fmt.Sprint(e.Indicates()))
		}
		fmt.Print(tb.String())
	} else {
		fmt.Printf("series too short for the Hurst battery: %v\n", err)
	}

	// Sessionization summary.
	sessions, err := session.Sessionize(records, session.DefaultThreshold)
	if err != nil {
		return err
	}
	fmt.Printf("\n%s sessions (30-minute threshold)\n", report.Count(int64(len(sessions))))
	tb := report.NewTable("characteristic", "n", "mean", "median", "p99", "max")
	for _, c := range []struct {
		name   string
		values []float64
	}{
		{"session length (s)", session.PositiveOnly(session.Durations(sessions))},
		{"requests/session", session.RequestCounts(sessions)},
		{"bytes/session", session.ByteCounts(sessions)},
	} {
		if len(c.values) < 2 {
			continue
		}
		s, err := stats.Summarize(c.values)
		if err != nil {
			return err
		}
		p99, _ := stats.Quantile(c.values, 0.99)
		tb.AddRow(c.name, report.Count(int64(s.N)), report.F2(s.Mean), report.F2(s.Median), report.F2(p99), report.F2(s.Max))
	}
	fmt.Print(tb.String())
	return nil
}

func writeSampleLog() (string, error) {
	trace, err := workload.Generate(workload.CSEE(), workload.Config{Scale: 0.05, Seed: 3, Days: 2})
	if err != nil {
		return "", err
	}
	path := filepath.Join(os.TempDir(), "fullweb-example.log")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	if err := weblog.WriteAll(f, trace.Records); err != nil {
		return "", err
	}
	return path, nil
}
