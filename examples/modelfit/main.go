// Model-fit example: the point of a workload characterization is to get
// a generative model out of it (the paper's FULL-TEL analogy). This
// example closes the loop:
//
//  1. synthesize a "real" trace (standing in for a server log),
//
//  2. run the FULL-Web analysis on it,
//
//  3. fit a generative profile from the measured model,
//
//  4. synthesize a NEW trace from the fitted profile,
//
//  5. compare the statistical fingerprints of the two traces.
//
//     go run ./examples/modelfit
package main

import (
	"fmt"
	"log"

	"fullweb/internal/core"
	"fullweb/internal/heavytail"
	"fullweb/internal/report"
	"fullweb/internal/session"
	"fullweb/internal/weblog"
	"fullweb/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatal("modelfit: ", err)
	}
}

// fingerprint summarizes the statistics we want preserved across the
// round trip.
type fingerprint struct {
	requests, sessions int
	meanReqPerSession  float64
	alphaDuration      float64
	alphaBytes         float64
}

func fingerprintOf(records []weblog.Record) (fingerprint, error) {
	var fp fingerprint
	fp.requests = len(records)
	sessions, err := session.Sessionize(records, session.DefaultThreshold)
	if err != nil {
		return fp, err
	}
	fp.sessions = len(sessions)
	fp.meanReqPerSession = float64(fp.requests) / float64(fp.sessions)
	dur, err := heavytail.EstimateLLCDAuto(session.PositiveOnly(session.Durations(sessions)))
	if err != nil {
		return fp, err
	}
	fp.alphaDuration = dur.Alpha
	by, err := heavytail.EstimateLLCDAuto(session.PositiveOnly(session.ByteCounts(sessions)))
	if err != nil {
		return fp, err
	}
	fp.alphaBytes = by.Alpha
	return fp, nil
}

func run() error {
	// 1. The "real" log: a NASA-Pub2-like week.
	original, err := workload.Generate(workload.NASAPub2(), workload.Config{Scale: 1, Seed: 99})
	if err != nil {
		return err
	}
	fmt.Printf("original trace: %s requests, %s sessions\n",
		report.Count(int64(len(original.Records))), report.Count(int64(original.PlantedSessions)))

	// 2. Full analysis.
	cfg := core.DefaultConfig()
	cfg.Curvature.Replications = 30
	analyzer, err := core.NewAnalyzer(cfg)
	if err != nil {
		return err
	}
	fmt.Println("running the FULL-Web analysis (stationarity, Hurst battery, tails)...")
	model, err := analyzer.Analyze("captured-log", weblog.NewStore(original.Records))
	if err != nil {
		return err
	}

	// 3. Fit a generative profile from the measurements.
	fitted, err := workload.FitProfile(model)
	if err != nil {
		return err
	}
	fmt.Printf("fitted profile: %d requests/week, %d sessions/week, H=%s, alphas=(%s, %s, %s)\n",
		fitted.RequestsWeek, fitted.SessionsWeek, report.F2(fitted.Hurst),
		report.F2(fitted.AlphaDuration), report.F2(fitted.AlphaRequests), report.F2(fitted.AlphaBytes))

	// 4. Synthesize a new week from the fitted profile.
	regen, err := workload.Generate(fitted, workload.Config{Scale: 1, Seed: 100})
	if err != nil {
		return err
	}

	// 5. Compare fingerprints.
	fpO, err := fingerprintOf(original.Records)
	if err != nil {
		return err
	}
	fpR, err := fingerprintOf(regen.Records)
	if err != nil {
		return err
	}
	tb := report.NewTable("statistic", "original", "regenerated")
	tb.AddRow("requests", report.Count(int64(fpO.requests)), report.Count(int64(fpR.requests)))
	tb.AddRow("sessions", report.Count(int64(fpO.sessions)), report.Count(int64(fpR.sessions)))
	tb.AddRow("mean requests/session", report.F2(fpO.meanReqPerSession), report.F2(fpR.meanReqPerSession))
	tb.AddRow("alpha (session length)", report.F(fpO.alphaDuration), report.F(fpR.alphaDuration))
	tb.AddRow("alpha (bytes/session)", report.F(fpO.alphaBytes), report.F(fpR.alphaBytes))
	fmt.Print(tb.String())
	fmt.Println("\nreading: the fitted profile regenerates a statistically equivalent workload —")
	fmt.Println("volumes and tail indices carry through the analyze -> fit -> synthesize loop.")
	return nil
}
