GO ?= go

.PHONY: all build test race vet lint check bench bench-obs bench-stream bench-shard bench-serve bench-intake bench-wal fuzz fuzz-smoke

all: build

build:
	$(GO) build ./...

# -shuffle=on randomizes test (and subtest) execution order so
# order-dependent tests can't hide behind source order.
test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on ./...

vet:
	$(GO) vet ./...

# lint runs the repo's custom determinism/concurrency/dataflow
# analyzers (internal/lint, driven by cmd/fullweb-lint): maporder,
# globalrand, walltime, rawgo, ctxflow, faultguard, plus the PR 7
# dataflow trio — hotalloc (allocation sites in //hot:path functions),
# statesync (checkpoint/merge field coverage), mergealias (Merge/
# snapshot storage aliasing). See DESIGN.md "Machine-checked
# invariants" and §13.
lint:
	$(GO) run ./cmd/fullweb-lint ./...

# check is the tier-1 gate (see README "Testing"): everything must
# compile, pass vet and the custom lint suite, pass the full test
# suite (shuffled) under the race detector, and survive a short fuzz
# smoke over the log parsers.
check: vet lint build race fuzz-smoke

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-obs captures the PR 3 benchmark evidence: the repro sweep pair
# and the observability overhead pair, benchstat-compatible, three
# samples each. The committed BENCH_pr3.json is one run of this target.
bench-obs:
	$(GO) test -run '^$$' -bench 'ReproSweep|ObsOverhead' -benchmem -count=3 . | tee BENCH_pr3.json

# bench-stream captures the streaming-vs-batch benchmark evidence:
# records/sec plus the allocation gap from never materializing the
# trace. The committed BENCH_pr4.json was the PR 4 baseline (~5.2
# heap allocations per record); BENCH_pr7.json is the same target
# after the hotalloc burn-down (hand-rolled CLF field splitting, the
# concrete expiry heap) cut it to ~1.2. One run of this target
# produces the committed file.
bench-stream:
	$(GO) test -run '^$$' -bench 'StreamVsBatch' -benchmem -count=3 . | tee BENCH_pr7.json

# bench-shard captures the PR 6 benchmark evidence: the streaming
# engine at one shard versus four on identical CLF bytes. The gate is
# no records/sec regression at -shards 1 (the single-shard path skips
# the host hash and snapshot merge entirely). The committed
# BENCH_pr6.json is one run of this target.
bench-shard:
	$(GO) test -run '^$$' -bench 'ShardedStream' -benchmem -count=3 . | tee BENCH_pr6.json

# bench-serve captures the PR 8 benchmark evidence: the streaming
# engine with the telemetry surface off versus fully on (registry
# instruments, copy-on-publish holder, live HTTP scraper polling
# /metrics and /snapshot throughout). The gate is no records/sec
# regression and no per-record allocation growth — publication is
# chunk-granular and scrapes read only published values. The committed
# BENCH_pr8.json is one run of this target.
bench-serve:
	$(GO) test -run '^$$' -bench 'ObsServe' -benchmem -count=3 . | tee BENCH_pr8.json

# bench-intake captures the PR 9 benchmark evidence: the same CLF
# bytes through the stream engine three ways — straight from a file
# reader, through the serve HTTP /ingest path, and through the raw TCP
# intake — at 1 and 4 shards. The gate is HTTP and TCP records/sec
# within 20% of the file path: the intake queue and transport framing
# must not be the bottleneck. The committed BENCH_pr9.json is one run
# of this target.
bench-intake:
	$(GO) test -run '^$$' -bench 'IntakeFile|IntakeHTTP|IntakeTCP' -benchmem -count=3 . | tee BENCH_pr9.json

# bench-wal captures the PR 10 benchmark evidence: the serve HTTP
# intake at one shard with the durable journal off and on, over
# delivery-ID-stamped 256 KiB POSTs. The gate is WAL-on records/sec
# within 10% of WAL-off: journaling a delivery before acknowledging
# it (sha256 framing, segment writes, OS-writeback durability) must
# not become the intake bottleneck. The committed BENCH_pr10.json is
# one run of this target.
bench-wal:
	$(GO) test -run '^$$' -bench 'IntakeWAL' -benchmem -count=3 . | tee BENCH_pr10.json

# Short fuzz smoke (~15s total) over the checked-in corpora; part of
# the tier-1 gate so parser and sessionizer regressions surface
# immediately. The streamer/batch target is the root of the PR 4
# streaming-equals-batch invariant.
fuzz-smoke:
	$(GO) test -fuzz=FuzzParseCLF -fuzztime=5s ./internal/weblog/
	$(GO) test -fuzz=FuzzParseCombined -fuzztime=5s ./internal/weblog/
	$(GO) test -fuzz=FuzzChunkedIngest -fuzztime=5s ./internal/weblog/
	$(GO) test -fuzz=FuzzStreamerBatchEquivalence -fuzztime=3s ./internal/session/

# Longer fuzz pass over the log-parser targets; starts warm from the
# minimized seed corpora in internal/weblog/testdata/fuzz/.
fuzz:
	$(GO) test -fuzz=FuzzParseCLF -fuzztime=30s ./internal/weblog/
	$(GO) test -fuzz=FuzzParseCombined -fuzztime=30s ./internal/weblog/
