GO ?= go

.PHONY: all build test race vet check bench fuzz

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# check is the tier-1 gate (see README "Testing"): everything must
# compile, pass vet, and pass the full suite under the race detector.
check: vet build race

bench:
	$(GO) test -bench=. -benchmem ./...

# Short fuzz pass over the log-parser targets.
fuzz:
	$(GO) test -fuzz=FuzzParseCLF -fuzztime=30s ./internal/weblog/
	$(GO) test -fuzz=FuzzParseCombined -fuzztime=30s ./internal/weblog/
