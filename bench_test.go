// Top-level benchmark harness: one benchmark per table and figure of
// the paper, each regenerating its experiment end-to-end from a fresh
// synthetic trace (generation + sessionization + estimation). Scales
// are reduced relative to cmd/paperrepro so the whole suite stays
// laptop-friendly; the harness and parameters are identical otherwise.
//
//	go test -bench=. -benchmem
package fullweb_test

import (
	"io"
	"testing"
	"time"

	"fullweb/internal/core"
	"fullweb/internal/obs"
	"fullweb/internal/repro"
)

const (
	benchScale = 0.03
	benchSeed  = 1
)

// newBenchHarness returns a harness for one benchmark iteration. days=1
// keeps the arrival-series experiments (fixed 86400-point series per
// day regardless of scale) affordable; the tail tables use the full
// week to have enough sessions.
func newBenchHarness(days int) *repro.Harness {
	h := repro.NewHarness(benchScale, benchSeed)
	h.Days = days
	cfg := core.DefaultConfig()
	if days < 7 {
		// A one-day horizon cannot contain a 24-hour period; search a
		// sub-daily band instead (same rationale as the repro tests).
		cfg.Stationarize.MinPeriod = 600
		cfg.Stationarize.MaxPeriod = 43200
	}
	cfg.Curvature.Replications = 50
	h.AnalyzerConfig = &cfg
	return h
}

// benchSweep is the before/after workload for the parallel engine: the
// two full-battery Hurst experiments (raw + stationary, all four
// servers) off one harness, the dominant cost of a reproduction run.
func benchSweep(b *testing.B, workers int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		h := newBenchHarness(1)
		h.Workers = workers
		if _, err := h.Figure4(); err != nil {
			b.Fatal(err)
		}
		if _, err := h.Figure6(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReproSweepSequential and BenchmarkReproSweepParallel are the
// concurrency before/after pair: identical work (and identical results —
// see TestHarnessParallelMatchesSequential) at pool size 1 vs all CPUs.
// The gap is the engine's speedup; on a single-core host they coincide.
func BenchmarkReproSweepSequential(b *testing.B) { benchSweep(b, 1) }

func BenchmarkReproSweepParallel(b *testing.B) { benchSweep(b, 0) }

// benchObsOverhead measures one full Figure 4 experiment (generation +
// sessionization + four-server Hurst battery) with the given
// instrumentation. The Off/On pair bounds the observability tax: the
// contract in DESIGN.md is that full tracing plus metrics stays within
// a few percent of the uninstrumented run.
func benchObsOverhead(b *testing.B, instrument bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		h := newBenchHarness(1)
		if instrument {
			clock := obs.NewManualClock(time.Unix(0, 0).UTC(), time.Microsecond)
			h.Tracer = obs.NewTracer(clock, obs.NewJSONLWriter(io.Discard))
			h.Metrics = obs.NewRegistry()
		}
		if _, err := h.Figure4(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObsOverheadTracingOff and BenchmarkObsOverheadTracingOn are
// the observability before/after pair: identical work and identical
// results (TestHarnessDeterministicUnderInstrumentation) with the no-op
// path vs full JSONL tracing and a live metrics registry.
func BenchmarkObsOverheadTracingOff(b *testing.B) { benchObsOverhead(b, false) }

func BenchmarkObsOverheadTracingOn(b *testing.B) { benchObsOverhead(b, true) }

func BenchmarkTable1RawData(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newBenchHarness(7)
		if _, err := h.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2RequestSeries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newBenchHarness(7)
		if _, err := h.Figure2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3ACFRaw(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newBenchHarness(1)
		if _, err := h.Figure3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5ACFStationary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newBenchHarness(1)
		if _, err := h.Figure5(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4HurstRaw(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newBenchHarness(1)
		if _, err := h.Figure4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6HurstStationary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newBenchHarness(1)
		if _, err := h.Figure6(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7WhittleAggregation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newBenchHarness(1)
		if _, err := h.Figure7(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8AbryVeitchAggregation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newBenchHarness(1)
		if _, err := h.Figure8(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSection42PoissonRequests(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newBenchHarness(7)
		if _, err := h.Section42(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure9SessionHurstRaw(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newBenchHarness(1)
		if _, err := h.Figure9(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure10SessionHurstStationary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newBenchHarness(1)
		if _, err := h.Figure10(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSection512PoissonSessions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newBenchHarness(7)
		if _, err := h.Section512(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure11LLCDSessionLength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newBenchHarness(7)
		if _, err := h.Figure11(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure12HillSessionLength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newBenchHarness(7)
		if _, err := h.Figure12(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure13LLCDRequestsPerSession(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newBenchHarness(7)
		if _, err := h.Figure13(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2SessionLength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newBenchHarness(7)
		if _, err := h.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3RequestsPerSession(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newBenchHarness(7)
		if _, err := h.Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4BytesPerSession(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newBenchHarness(7)
		if _, err := h.Table4(); err != nil {
			b.Fatal(err)
		}
	}
}
