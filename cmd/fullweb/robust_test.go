package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// dirtyTestLog writes a generated trace with malformed lines
// interleaved, returning the path and the malformed lines in order.
func dirtyTestLog(t *testing.T) (string, []string) {
	t.Helper()
	clean := streamTestLog(t)
	text, err := os.ReadFile(clean)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	var junk []string
	for i, line := range strings.Split(strings.TrimSuffix(string(text), "\n"), "\n") {
		if i > 0 && i%97 == 0 {
			bad := fmt.Sprintf("### corrupted line %d ###", i)
			junk = append(junk, bad)
			out.WriteString(bad + "\n")
		}
		out.WriteString(line + "\n")
	}
	path := filepath.Join(t.TempDir(), "dirty.log")
	if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, junk
}

// finalBlock cuts the output from the final snapshot onward.
func finalBlock(t *testing.T, out string) string {
	t.Helper()
	i := strings.Index(out, "-- final @")
	if i < 0 {
		t.Fatalf("no final snapshot in output:\n%s", out)
	}
	return out[i:]
}

// TestStreamCrashResumeCLI drives the crash-recovery path end to end
// through the CLI: a run killed by an injected fault is resumed with
// -resume — at a different worker count and chunk geometry — and must
// reproduce the uninterrupted run's final snapshot and quarantine
// byte for byte.
func TestStreamCrashResumeCLI(t *testing.T) {
	log, _ := dirtyTestLog(t)
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "stream.ckpt")
	blQuar := filepath.Join(dir, "baseline.quarantine")
	quar := filepath.Join(dir, "crash.quarantine")

	baseline := runStream(t, "-log", log, "-snapshot", "4h", "-quarantine", blQuar)

	var crashOut bytes.Buffer
	err := run([]string{"stream", "-log", log, "-snapshot", "4h",
		"-chunk-lines", "64", "-checkpoint", ckpt, "-quarantine", quar,
		"-faults", "stream.fold=hit:5"}, &crashOut)
	if err == nil {
		t.Fatal("injected fault did not fail the run")
	}
	if !strings.Contains(crashOut.String(), "fault site stream.fold: hits=5 fires=1") {
		t.Fatalf("no fault summary after the faulted run:\n%s", crashOut.String())
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint written before the crash: %v", err)
	}

	resumed := runStream(t, "-log", log, "-snapshot", "4h",
		"-parallel", "3", "-chunk-lines", "500",
		"-checkpoint", ckpt, "-resume", "-quarantine", quar)
	if !strings.Contains(resumed, "resumed from "+ckpt) {
		t.Fatalf("resume did not announce itself:\n%s", resumed)
	}
	if got, want := finalBlock(t, resumed), finalBlock(t, baseline); got != want {
		t.Fatalf("resumed final snapshot differs:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
	gotQuar, err := os.ReadFile(quar)
	if err != nil {
		t.Fatal(err)
	}
	wantQuar, err := os.ReadFile(blQuar)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotQuar, wantQuar) {
		t.Fatalf("resumed quarantine differs: %d bytes vs %d", len(gotQuar), len(wantQuar))
	}
}

// TestStreamFaultsEnvFallback: FULLWEB_FAULTS arms the same injection
// as -faults.
func TestStreamFaultsEnvFallback(t *testing.T) {
	log := streamTestLog(t)
	t.Setenv("FULLWEB_FAULTS", "weblog.read=hit:1")
	var out bytes.Buffer
	err := run([]string{"stream", "-log", log}, &out)
	if err == nil || !strings.Contains(err.Error(), "injected fault") {
		t.Fatalf("FULLWEB_FAULTS not honored: %v", err)
	}
}

// TestStreamModesCLI: the three ingestion modes through the CLI flags.
func TestStreamModesCLI(t *testing.T) {
	log, junk := dirtyTestLog(t)

	var out bytes.Buffer
	err := run([]string{"stream", "-log", log, "-mode", "strict"}, &out)
	if err == nil || !strings.Contains(err.Error(), "strict mode") {
		t.Fatalf("strict mode tolerated malformed input: %v", err)
	}

	quar := filepath.Join(t.TempDir(), "q.log")
	budgeted := runStream(t, "-log", log, "-snapshot", "0",
		"-max-rejects", "1", "-quarantine", quar)
	for _, want := range []string{"input: DEGRADED", "budget breach", "reject sample:"} {
		if !strings.Contains(budgeted, want) {
			t.Errorf("budgeted output missing %q:\n%s", want, budgeted)
		}
	}
	qbytes, err := os.ReadFile(quar)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := string(qbytes), strings.Join(junk, "\n")+"\n"; got != want {
		t.Errorf("quarantine content:\n%q\nwant:\n%q", got, want)
	}

	lenient := runStream(t, "-log", log, "-snapshot", "0", "-mode", "lenient", "-max-rejects", "1")
	if !strings.Contains(lenient, "input: ok") || strings.Contains(lenient, "DEGRADED") {
		t.Errorf("lenient mode degraded:\n%s", lenient)
	}
}

// TestAnalyzeInputHealth: the batch front end surfaces the same
// reject accounting and DegradedInput verdict as the stream snapshots.
func TestAnalyzeInputHealth(t *testing.T) {
	log, junk := dirtyTestLog(t)

	quar := filepath.Join(t.TempDir(), "q.log")
	var out bytes.Buffer
	if err := run([]string{"analyze", "-log", log,
		"-max-rejects", "1", "-quarantine", quar}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"input: DEGRADED", "budget breach", "reject sample: line 98"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("analyze output missing %q", want)
		}
	}
	qbytes, err := os.ReadFile(quar)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := string(qbytes), strings.Join(junk, "\n")+"\n"; got != want {
		t.Errorf("quarantine content:\n%q\nwant:\n%q", got, want)
	}

	var strictOut bytes.Buffer
	err = run([]string{"analyze", "-log", log, "-mode", "strict"}, &strictOut)
	if err == nil || !strings.Contains(err.Error(), "line 98") {
		t.Fatalf("strict analyze error not positioned: %v", err)
	}
}

// TestRobustUsageErrors: flag validation for the robustness surface.
func TestRobustUsageErrors(t *testing.T) {
	log := streamTestLog(t)
	var out bytes.Buffer
	if err := run([]string{"stream", "-log", log, "-mode", "nonsense"}, &out); err == nil {
		t.Error("bad -mode accepted")
	}
	if err := run([]string{"stream", "-log", log, "-faults", "no-equals-sign"}, &out); err == nil {
		t.Error("bad -faults spec accepted")
	}
	if err := run([]string{"stream", "-log", log, "-resume"}, &out); err == nil {
		t.Error("-resume without -checkpoint accepted")
	}
	if err := run([]string{"stream", "-log", log, "-resume", "-checkpoint", "missing.ckpt"}, &out); err == nil {
		t.Error("-resume with a missing checkpoint accepted")
	}
	if err := run([]string{"analyze", "-log", log, "-mode", "nonsense"}, &out); err == nil {
		t.Error("analyze bad -mode accepted")
	}
}
