package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"fullweb/internal/report"
	"fullweb/internal/telemetry"
)

// scrape polls the telemetry service whose address lands in addrFile:
// it waits for the listener, then hammers /metrics, /snapshot, /healthz
// and /readyz until stop closes, returning how many full rounds
// succeeded and the last /snapshot body it saw.
func scrape(t *testing.T, addrFile string, stop <-chan struct{}) (rounds *int64, lastSnapshot *[]byte, done *sync.WaitGroup) {
	t.Helper()
	var n int64
	var last []byte
	var wg sync.WaitGroup
	wg.Add(1)
	//lint:allow rawgo test scraper thread; joined via WaitGroup before any assertion
	go func() {
		defer wg.Done()
		var base string
		for i := 0; i < 1000; i++ {
			b, err := os.ReadFile(addrFile)
			if err == nil && len(b) > 0 {
				base = "http://" + strings.TrimSpace(string(b))
				break
			}
			select {
			case <-stop:
				return
			case <-time.After(10 * time.Millisecond):
			}
		}
		if base == "" {
			return
		}
		client := &http.Client{Timeout: 2 * time.Second}
		get := func(path string) ([]byte, bool) {
			resp, err := client.Get(base + path)
			if err != nil {
				return nil, false
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			if _, err := buf.ReadFrom(resp.Body); err != nil {
				return nil, false
			}
			return buf.Bytes(), resp.StatusCode == http.StatusOK
		}
		for {
			select {
			case <-stop:
				return
			default:
			}
			m, mok := get("/metrics")
			s, sok := get("/snapshot")
			_, _ = get("/healthz")
			_, _ = get("/readyz")
			if mok && sok && bytes.Contains(m, []byte("fullweb_")) {
				n++
				last = append(last[:0], s...)
			}
		}
	}()
	return &n, &last, &wg
}

// TestStreamListenEquivalence is the PR's acceptance gate: a sharded
// run with the telemetry service up and a concurrent scraper hammering
// it produces stdout byte-identical to the same run with -listen off.
func TestStreamListenEquivalence(t *testing.T) {
	log := streamTestLog(t)
	baseline := runStream(t, "-log", log, "-shards", "4")

	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr.txt")
	stop := make(chan struct{})
	rounds, lastSnap, wg := scrape(t, addrFile, stop)

	// -linger holds the service up briefly after the run so the scraper
	// is guaranteed to observe the final published state.
	listened := runStream(t, "-log", log, "-shards", "4",
		"-listen", "127.0.0.1:0", "-listen-addr-file", addrFile,
		"-linger", "1s")
	close(stop)
	wg.Wait()

	if listened != baseline {
		t.Errorf("-listen changed stdout:\nbaseline:\n%s\nlistened:\n%s", baseline, listened)
	}
	if *rounds == 0 {
		t.Fatal("scraper never completed a successful round against the live service")
	}
	var snap telemetry.PublishedSnapshot
	if err := json.Unmarshal(*lastSnap, &snap); err != nil {
		t.Fatalf("last /snapshot body not JSON: %v\n%s", err, *lastSnap)
	}
	if snap.Snapshot == nil || snap.Snapshot.Records == 0 {
		t.Errorf("last snapshot carries no records: %+v", snap)
	}
	if !snap.Snapshot.Final {
		t.Errorf("snapshot scraped during linger should be the final one: %+v", snap)
	}
}

// readReport decodes and format-checks a run report file.
func readReport(t *testing.T, path string) telemetry.RunReport {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep telemetry.RunReport
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("run report not JSON: %v", err)
	}
	if rep.Format != telemetry.ReportFormat || rep.Version != telemetry.ReportVersion {
		t.Fatalf("report identity %q v%d, want %q v%d", rep.Format, rep.Version, telemetry.ReportFormat, telemetry.ReportVersion)
	}
	return rep
}

func TestStreamRunReport(t *testing.T) {
	log := streamTestLog(t)
	path := filepath.Join(t.TempDir(), "report.json")
	// A never-firing fault site proves hit accounting lands in the
	// report without perturbing the run.
	runStream(t, "-log", log, "-shards", "2", "-report", path,
		"-faults", "stream.fold=hit:999999999")

	rep := readReport(t, path)
	if rep.Tool != "stream" {
		t.Errorf("tool %q", rep.Tool)
	}
	if len(rep.Inputs) != 1 || rep.Inputs[0] != log {
		t.Errorf("inputs %v", rep.Inputs)
	}
	if rep.Verdict != "ok" {
		t.Errorf("verdict %q, want ok", rep.Verdict)
	}
	if rep.Totals.Records == 0 || rep.Totals.Sessions == 0 || rep.Totals.SpanSeconds <= 0 {
		t.Errorf("empty totals %+v", rep.Totals)
	}
	if rep.Snapshots == 0 {
		t.Error("no snapshots counted")
	}
	if len(rep.Characteristics) != 3 {
		t.Errorf("%d characteristics, want 3", len(rep.Characteristics))
	}
	for _, c := range rep.Characteristics {
		if c.N == 0 || c.P50 <= 0 {
			t.Errorf("characteristic %q looks empty: %+v", c.Name, c)
		}
	}
	cfg, ok := rep.Config.(map[string]any)
	if !ok {
		t.Fatalf("config is %T, want object", rep.Config)
	}
	if cfg["shards"] != float64(2) {
		t.Errorf("config shards = %v, want 2", cfg["shards"])
	}
	if len(rep.Faults) != 1 || rep.Faults[0].Site != "stream.fold" || rep.Faults[0].Hits == 0 || rep.Faults[0].Fires != 0 {
		t.Errorf("fault stats %+v", rep.Faults)
	}
	if len(rep.Obs.Counters) == 0 {
		t.Error("obs snapshot has no counters")
	}
}

// TestStreamRunReportDegraded: a breached error budget surfaces as the
// "degraded" verdict in the report while the run still completes.
func TestStreamRunReportDegraded(t *testing.T) {
	log := streamTestLog(t)
	dirty := filepath.Join(t.TempDir(), "dirty.log")
	content, err := os.ReadFile(log)
	if err != nil {
		t.Fatal(err)
	}
	content = append(content, []byte("garbage line one\ngarbage line two\n")...)
	if err := os.WriteFile(dirty, content, 0o644); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "report.json")
	runStream(t, "-log", dirty, "-mode", "budgeted", "-max-rejects", "1", "-report", path)

	rep := readReport(t, path)
	if rep.Verdict != "degraded" {
		t.Errorf("verdict %q, want degraded", rep.Verdict)
	}
	if rep.Ingest.Rejected != 2 || !rep.Ingest.Degraded {
		t.Errorf("ingest %+v", rep.Ingest)
	}
}

func TestAnalyzeRunReport(t *testing.T) {
	log := streamTestLog(t)
	path := filepath.Join(t.TempDir(), "report.json")
	var out bytes.Buffer
	if err := run([]string{"analyze", "-log", log, "-server", "test", "-report", path}, &out); err != nil {
		t.Fatal(err)
	}

	rep := readReport(t, path)
	if rep.Tool != "analyze" {
		t.Errorf("tool %q", rep.Tool)
	}
	if rep.Verdict != "ok" {
		t.Errorf("verdict %q", rep.Verdict)
	}
	if rep.Totals.Records == 0 || rep.Totals.Sessions == 0 {
		t.Errorf("empty totals %+v", rep.Totals)
	}
	// The stdout header and the report must agree on the totals.
	want := fmt.Sprintf("requests=%s", report.Count(rep.Totals.Records))
	if !strings.Contains(out.String(), want) {
		t.Errorf("stdout lacks %q:\n%s", want, out.String())
	}
	if len(rep.Characteristics) != 3 {
		t.Errorf("%d characteristics, want 3", len(rep.Characteristics))
	}
	for _, c := range rep.Characteristics {
		if c.N == 0 || !c.HillOK {
			t.Errorf("characteristic %q: %+v", c.Name, c)
		}
	}
	cfg, ok := rep.Config.(map[string]any)
	if !ok || cfg["server"] != "test" {
		t.Errorf("config %+v", rep.Config)
	}
	if len(rep.Obs.Counters) == 0 {
		t.Error("obs snapshot has no counters")
	}
}
