package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunUsageErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("no args should error")
	}
	if err := run([]string{"bogus"}, &out); err == nil {
		t.Error("unknown subcommand should error")
	}
	if err := run([]string{"analyze"}, &out); err == nil {
		t.Error("analyze without -log should error")
	}
	if err := run([]string{"sessions"}, &out); err == nil {
		t.Error("sessions without -log should error")
	}
	if err := run([]string{"generate", "-profile", "bogus"}, &out); err == nil {
		t.Error("unknown profile should error")
	}
}

func TestGenerateSessionsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "trace.log")
	var out bytes.Buffer
	err := run([]string{"generate",
		"-profile", "NASA-Pub2", "-scale", "1", "-seed", "5", "-days", "2",
		"-out", logPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(logPath)
	if err != nil || info.Size() == 0 {
		t.Fatalf("log not written: %v", err)
	}
	out.Reset()
	if err := run([]string{"sessions", "-log", logPath}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"records=", "sessions=", "duration (s)", "requests", "bytes"} {
		if !strings.Contains(text, want) {
			t.Errorf("sessions output missing %q:\n%s", want, text)
		}
	}
}

func TestGeneratePoissonBaselineFlag(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "baseline.log")
	var out bytes.Buffer
	err := run([]string{"generate",
		"-profile", "NASA-Pub2", "-scale", "1", "-seed", "5", "-days", "2",
		"-poisson-baseline", "-out", logPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if info, err := os.Stat(logPath); err != nil || info.Size() == 0 {
		t.Fatalf("baseline log not written: %v", err)
	}
}

func TestLoadLogRejectsMissingAndEmpty(t *testing.T) {
	if _, err := loadLog(filepath.Join(t.TempDir(), "missing.log")); err == nil {
		t.Error("missing file should error")
	}
	empty := filepath.Join(t.TempDir(), "empty.log")
	if err := os.WriteFile(empty, []byte("garbage\nmore garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadLog(empty); err == nil {
		t.Error("log without parseable records should error")
	}
}

func TestReliabilityAndThresholdsSubcommands(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "trace.log")
	var out bytes.Buffer
	err := run([]string{"generate",
		"-profile", "NASA-Pub2", "-scale", "1", "-seed", "6", "-days", "2",
		"-out", logPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"reliability", "-log", logPath}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"request reliability", "session reliability", "status"} {
		if !strings.Contains(text, want) {
			t.Errorf("reliability output missing %q:\n%s", want, text)
		}
	}
	out.Reset()
	if err := run([]string{"thresholds", "-log", logPath}, &out); err != nil {
		t.Fatal(err)
	}
	text = out.String()
	for _, want := range []string{"threshold", "30m0s", "sessions"} {
		if !strings.Contains(text, want) {
			t.Errorf("thresholds output missing %q:\n%s", want, text)
		}
	}
	if err := run([]string{"reliability"}, &out); err == nil {
		t.Error("reliability without -log should error")
	}
	if err := run([]string{"thresholds"}, &out); err == nil {
		t.Error("thresholds without -log should error")
	}
}

func TestFitSubcommand(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "trace.log")
	var out bytes.Buffer
	err := run([]string{"generate",
		"-profile", "NASA-Pub2", "-scale", "1", "-seed", "9", "-days", "2",
		"-out", logPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"fit", "-log", logPath, "-server", "nasa-copy"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"nasa-copy", "requests/week", "alpha session length", "Hurst"} {
		if !strings.Contains(text, want) {
			t.Errorf("fit output missing %q:\n%s", want, text)
		}
	}
	if err := run([]string{"fit"}, &out); err == nil {
		t.Error("fit without -log should error")
	}
}

func TestFitOutAndGenerateFromProfileFile(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "trace.log")
	profilePath := filepath.Join(dir, "profile.json")
	var out bytes.Buffer
	err := run([]string{"generate",
		"-profile", "NASA-Pub2", "-scale", "1", "-seed", "12", "-days", "2",
		"-out", logPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"fit", "-log", logPath, "-server", "refit", "-out", profilePath}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "profile written to") {
		t.Errorf("fit output missing confirmation:\n%s", out.String())
	}
	// Regenerate from the fitted profile file.
	out.Reset()
	regenPath := filepath.Join(dir, "regen.log")
	err = run([]string{"generate",
		"-profile-file", profilePath, "-scale", "1", "-seed", "13", "-days", "1",
		"-out", regenPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if info, err := os.Stat(regenPath); err != nil || info.Size() == 0 {
		t.Fatalf("regenerated log missing: %v", err)
	}
	// Bad profile file errors cleanly.
	if err := run([]string{"generate", "-profile-file", filepath.Join(dir, "nope.json")}, &out); err == nil {
		t.Error("missing profile file should error")
	}
}
