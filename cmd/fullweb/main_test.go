package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunUsageErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("no args should error")
	}
	if err := run([]string{"bogus"}, &out); err == nil {
		t.Error("unknown subcommand should error")
	}
	if err := run([]string{"analyze"}, &out); err == nil {
		t.Error("analyze without -log should error")
	}
	if err := run([]string{"sessions"}, &out); err == nil {
		t.Error("sessions without -log should error")
	}
	if err := run([]string{"generate", "-profile", "bogus"}, &out); err == nil {
		t.Error("unknown profile should error")
	}
}

func TestGenerateSessionsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "trace.log")
	var out bytes.Buffer
	err := run([]string{"generate",
		"-profile", "NASA-Pub2", "-scale", "1", "-seed", "5", "-days", "2",
		"-out", logPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(logPath)
	if err != nil || info.Size() == 0 {
		t.Fatalf("log not written: %v", err)
	}
	out.Reset()
	if err := run([]string{"sessions", "-log", logPath}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"records=", "sessions=", "duration (s)", "requests", "bytes"} {
		if !strings.Contains(text, want) {
			t.Errorf("sessions output missing %q:\n%s", want, text)
		}
	}
}

func TestGeneratePoissonBaselineFlag(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "baseline.log")
	var out bytes.Buffer
	err := run([]string{"generate",
		"-profile", "NASA-Pub2", "-scale", "1", "-seed", "5", "-days", "2",
		"-poisson-baseline", "-out", logPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if info, err := os.Stat(logPath); err != nil || info.Size() == 0 {
		t.Fatalf("baseline log not written: %v", err)
	}
}

// TestAnalyzeDeterministicUnderInstrumentation is the observability
// determinism contract: turning tracing and metrics on must not change
// a single byte of the analysis report.
func TestAnalyzeDeterministicUnderInstrumentation(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "trace.log")
	var out bytes.Buffer
	err := run([]string{"generate",
		"-profile", "NASA-Pub2", "-scale", "1", "-seed", "5", "-days", "2",
		"-out", logPath}, &out)
	if err != nil {
		t.Fatal(err)
	}

	out.Reset()
	if err := run([]string{"analyze", "-log", logPath, "-parallel", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	plain := out.String()

	tracePath := filepath.Join(dir, "trace.jsonl")
	metricsPath := filepath.Join(dir, "metrics.json")
	out.Reset()
	err = run([]string{"analyze", "-log", logPath, "-parallel", "4",
		"-trace", tracePath, "-metrics", metricsPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if instrumented := out.String(); instrumented != plain {
		t.Errorf("analyze output changed when instrumentation was enabled:\nplain:\n%s\ninstrumented:\n%s", plain, instrumented)
	}

	// Every trace line must be valid JSON, and the span taxonomy must
	// cover the whole pipeline: parse, sessionize, estimators, batteries.
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var span struct {
			Name  string `json:"name"`
			DurNS int64  `json:"dur_ns"`
		}
		if err := json.Unmarshal([]byte(line), &span); err != nil {
			t.Fatalf("invalid trace line %q: %v", line, err)
		}
		if span.Name == "" {
			t.Fatalf("trace line missing span name: %q", line)
		}
		if span.DurNS < 0 {
			t.Errorf("span %s has negative duration %d", span.Name, span.DurNS)
		}
		seen[span.Name] = true
	}
	for _, want := range []string{
		"weblog.parse", "session.sessionize", "core.analyze",
		"lrd.estimate", "gof.battery", "heavytail.estimate", "parallel.task",
	} {
		if !seen[want] {
			t.Errorf("trace missing span %q; got %v", want, seen)
		}
	}

	// The metrics snapshot must be valid JSON with the core counters.
	mraw, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"counters"`
	}
	if err := json.Unmarshal(mraw, &snap); err != nil {
		t.Fatalf("metrics file is not valid JSON: %v", err)
	}
	have := map[string]int64{}
	for _, c := range snap.Counters {
		have[c.Name] = c.Value
	}
	for _, want := range []string{"weblog.records_parsed", "session.sessions_built"} {
		if v, ok := have[want]; !ok || v <= 0 {
			t.Errorf("metrics counter %q missing or zero; got %v", want, have)
		}
	}
}

func TestLoadLogRejectsMissingAndEmpty(t *testing.T) {
	if _, err := loadLog(context.Background(), filepath.Join(t.TempDir(), "missing.log")); err == nil {
		t.Error("missing file should error")
	}
	empty := filepath.Join(t.TempDir(), "empty.log")
	if err := os.WriteFile(empty, []byte("garbage\nmore garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadLog(context.Background(), empty); err == nil {
		t.Error("log without parseable records should error")
	}
}

func TestReliabilityAndThresholdsSubcommands(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "trace.log")
	var out bytes.Buffer
	err := run([]string{"generate",
		"-profile", "NASA-Pub2", "-scale", "1", "-seed", "6", "-days", "2",
		"-out", logPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"reliability", "-log", logPath}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"request reliability", "session reliability", "status"} {
		if !strings.Contains(text, want) {
			t.Errorf("reliability output missing %q:\n%s", want, text)
		}
	}
	out.Reset()
	if err := run([]string{"thresholds", "-log", logPath}, &out); err != nil {
		t.Fatal(err)
	}
	text = out.String()
	for _, want := range []string{"threshold", "30m0s", "sessions"} {
		if !strings.Contains(text, want) {
			t.Errorf("thresholds output missing %q:\n%s", want, text)
		}
	}
	if err := run([]string{"reliability"}, &out); err == nil {
		t.Error("reliability without -log should error")
	}
	if err := run([]string{"thresholds"}, &out); err == nil {
		t.Error("thresholds without -log should error")
	}
}

func TestFitSubcommand(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "trace.log")
	var out bytes.Buffer
	err := run([]string{"generate",
		"-profile", "NASA-Pub2", "-scale", "1", "-seed", "9", "-days", "2",
		"-out", logPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"fit", "-log", logPath, "-server", "nasa-copy"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"nasa-copy", "requests/week", "alpha session length", "Hurst"} {
		if !strings.Contains(text, want) {
			t.Errorf("fit output missing %q:\n%s", want, text)
		}
	}
	if err := run([]string{"fit"}, &out); err == nil {
		t.Error("fit without -log should error")
	}
}

func TestFitOutAndGenerateFromProfileFile(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "trace.log")
	profilePath := filepath.Join(dir, "profile.json")
	var out bytes.Buffer
	err := run([]string{"generate",
		"-profile", "NASA-Pub2", "-scale", "1", "-seed", "12", "-days", "2",
		"-out", logPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"fit", "-log", logPath, "-server", "refit", "-out", profilePath}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "profile written to") {
		t.Errorf("fit output missing confirmation:\n%s", out.String())
	}
	// Regenerate from the fitted profile file.
	out.Reset()
	regenPath := filepath.Join(dir, "regen.log")
	err = run([]string{"generate",
		"-profile-file", profilePath, "-scale", "1", "-seed", "13", "-days", "1",
		"-out", regenPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if info, err := os.Stat(regenPath); err != nil || info.Size() == 0 {
		t.Fatalf("regenerated log missing: %v", err)
	}
	// Bad profile file errors cleanly.
	if err := run([]string{"generate", "-profile-file", filepath.Join(dir, "nope.json")}, &out); err == nil {
		t.Error("missing profile file should error")
	}
}
