package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fullweb/internal/faultpoint"
	"fullweb/internal/obs"
	"fullweb/internal/serve"
	"fullweb/internal/session"
	"fullweb/internal/stream"
	"fullweb/internal/telemetry"
	"fullweb/internal/weblog"
)

// cmdServe is the live intake server: CLF lines arrive from declared
// sources over HTTP (POST /ingest) and optionally raw TCP, flow
// through the hardened ingestion path into the stream engine, and the
// what-if layer answers capacity queries online (GET /whatif) from the
// engine's published arrival series.
//
//	fullweb serve -source s1 -source s2 -listen 127.0.0.1:8080
//	curl --data-binary @s1.log 'http://127.0.0.1:8080/ingest?source=s1&complete=1'
//
// Source order is the determinism contract (DESIGN.md §15): the same
// lines over N sources in any delivery interleaving produce the same
// final snapshot as `fullweb stream` over the sources concatenated in
// declared order. SIGTERM/SIGINT begin a graceful drain: listeners
// close, buffered input folds, the final snapshot prints.
func cmdServe(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	var sources []string
	fs.Func("source", "declare an intake source ID; repeat the flag in fold order (required)", func(v string) error {
		if v == "" {
			return fmt.Errorf("empty -source value")
		}
		sources = append(sources, v)
		return nil
	})
	listen := fs.String("listen", "", "HTTP address for intake and telemetry (/ingest, /whatif, /metrics, /snapshot, /healthz, /readyz); ':0' picks a free port (required)")
	listenAddrFile := fs.String("listen-addr-file", "", "write the HTTP listener's bound address to this file (useful with -listen :0)")
	intakeTCP := fs.String("intake-tcp", "", "also accept raw line intake on this TCP address (protocol: 'fullweb-intake <source>\\n' then raw CLF lines; close = complete)")
	intakeTCPAddrFile := fs.String("intake-tcp-addr-file", "", "write the TCP intake listener's bound address to this file")
	bufferBytes := fs.Int64("buffer-bytes", serve.DefaultBufferBytes, "per-source intake buffer cap in bytes; a full buffer returns 429 on HTTP and blocks on TCP")
	whatifWindow := fs.Int("whatif-window", stream.DefaultArrivalWindow, "trailing arrival-series window in trace seconds for /whatif")
	staleAfter := fs.Duration("stale-after", telemetry.DefaultSourceStaleAfter, "source-staleness health rule: warn when an incomplete source has been silent this long")
	threshold := fs.Duration("threshold", session.DefaultThreshold, "session inactivity threshold")
	snapshotEvery := fs.Duration("snapshot", 6*time.Hour, "trace-time between snapshots (0 = final only)")
	workers := fs.Int("parallel", 0, "parse worker pool size (0 = all CPUs, 1 = sequential); snapshots are identical at any setting")
	shards := fs.Int("shards", 1, "hash-partition engine state by host into N mergeable shards")
	reservoir := fs.Int("reservoir", 8192, "per-characteristic Hill reservoir capacity")
	quantileCap := fs.Int("quantile-cap", stream.DefaultQuantileCap, "per-characteristic quantile sketch capacity (even, >= 16)")
	seed := fs.Int64("seed", 1, "reservoir sampling seed")
	chunkLines := fs.Int("chunk-lines", 0, "lines per parse chunk (0 = default)")
	chunkWindow := fs.Int("chunk-window", 0, "parse chunks in flight (0 = default); bounds memory with -parallel")
	mode := fs.String("mode", "budgeted", "ingestion mode: budgeted (count, quarantine, degrade), strict (fail on first reject) or lenient (count only)")
	quarantinePath := fs.String("quarantine", "", "append rejected raw lines to this file (budgeted/lenient modes)")
	checkpointPath := fs.String("checkpoint", "", "write a resumable engine checkpoint here at every snapshot boundary")
	resume := fs.Bool("resume", false, "resume from the -checkpoint file and/or replay the -wal journal instead of starting fresh")
	walDir := fs.String("wal", "", "durable intake journal directory: every delivery is journaled (sha256-framed segments) before acknowledgment; with -resume the journal replays on restart")
	walSegmentBytes := fs.Int64("wal-segment-bytes", serve.DefaultWALSegmentBytes, "rotate a source's journal segment past this many bytes")
	walSyncBytes := fs.Int64("wal-sync-bytes", serve.DefaultWALSyncBytes, "background-fsync a source's journal after this many unsynced bytes, bounding what a power loss can take (0 = OS writeback only: process crashes still lose nothing, forced writeback stays off the intake path)")
	walDiskBudget := fs.Int64("wal-disk-budget", 0, "cap the journal's on-disk footprint; appends past it shed intake with 503 (0 = unbounded)")
	walCheckpointBytes := fs.Int64("wal-checkpoint-bytes", serve.DefaultWALCheckpointBytes, "request an engine checkpoint whenever this many journaled bytes are not yet covered by one (requires -checkpoint)")
	maxRejects := fs.Int64("max-rejects", 0, "budgeted mode: degrade after this many rejected lines (0 = no absolute cap)")
	maxRejectRate := fs.Float64("max-reject-rate", 0, "budgeted mode: degrade when rejects/parse-attempts exceeds this rate (0 = no rate cap)")
	maxClamped := fs.Int64("max-clamped", 0, "budgeted mode: degrade after this many clamped non-monotonic timestamps (0 = no cap)")
	maxFieldBytes := fs.Int("max-field-bytes", 0, "reject records whose host or path exceeds this many bytes (0 = no limit)")
	faultSpec := fs.String("faults", "", "deterministic fault-injection spec, e.g. 'serve.read=hit:3' (default $FULLWEB_FAULTS)")
	reportPath := fs.String("report", "", "write the end-of-run JSON run report (including the what-if capacity sweep) to this file")
	var obsCfg obs.CLIConfig
	obsCfg.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(sources) == 0 {
		return fmt.Errorf("serve: at least one -source is required")
	}
	if *listen == "" {
		return fmt.Errorf("serve: -listen is required")
	}
	if *workers < 0 {
		return fmt.Errorf("serve: -parallel must be >= 0, got %d", *workers)
	}
	if *shards < 1 {
		return fmt.Errorf("serve: -shards must be >= 1, got %d", *shards)
	}
	if *whatifWindow < 1 {
		return fmt.Errorf("serve: -whatif-window must be >= 1, got %d", *whatifWindow)
	}
	if *resume && *checkpointPath == "" && *walDir == "" {
		return fmt.Errorf("serve: -resume requires -checkpoint or -wal")
	}
	if *intakeTCPAddrFile != "" && *intakeTCP == "" {
		return fmt.Errorf("serve: -intake-tcp-addr-file requires -intake-tcp")
	}
	ingestMode, err := stream.ParseMode(*mode)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	// Serve always runs its telemetry surface, so the registry is
	// always wanted.
	obsCfg.WantRegistry = true
	osess, err := obsCfg.Start(obs.SystemClock(), os.Stderr)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := osess.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	ctx := osess.Context(context.Background())

	spec := *faultSpec
	if spec == "" {
		spec = os.Getenv("FULLWEB_FAULTS")
	}
	var faults *faultpoint.Set
	if spec != "" {
		if faults, err = faultpoint.Parse(spec); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		ctx = faultpoint.With(ctx, faults)
	}

	// Load the checkpoint before touching any output state: a corrupt
	// or mismatched checkpoint must abort with everything untouched.
	var cp *stream.Checkpoint
	if *resume && *checkpointPath != "" {
		cp, err = stream.LoadCheckpoint(*checkpointPath)
		switch {
		case err == nil:
		case errors.Is(err, os.ErrNotExist) && *walDir != "":
			// The crash may predate the first checkpoint; the journal
			// alone still replays everything from byte 0.
			fmt.Fprintf(os.Stderr, "serve: no checkpoint at %s; recovering from the journal alone\n", *checkpointPath)
		default:
			return fmt.Errorf("serve: %w", err)
		}
	}

	var closers []io.Closer
	defer func() {
		for _, c := range closers {
			if cerr := c.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
	}()
	var quarantine io.Writer
	if *quarantinePath != "" {
		var offset int64
		if cp != nil {
			offset = cp.QuarantineOffset()
		}
		qf, qerr := openQuarantine(*quarantinePath, offset)
		if qerr != nil {
			return fmt.Errorf("serve: %w", qerr)
		}
		closers = append(closers, qf)
		quarantine = qf
	}

	cfg := stream.DefaultConfig()
	cfg.Threshold = *threshold
	cfg.SnapshotEvery = *snapshotEvery
	cfg.Workers = *workers
	cfg.Shards = *shards
	cfg.ReservoirCap = *reservoir
	cfg.QuantileCap = *quantileCap
	cfg.Seed = *seed
	cfg.Chunk = weblog.ChunkConfig{Lines: *chunkLines, Window: *chunkWindow, MaxFieldBytes: *maxFieldBytes}
	cfg.Mode = ingestMode
	cfg.Budget = stream.Budget{MaxRejects: *maxRejects, MaxRejectRate: *maxRejectRate, MaxClamped: *maxClamped}
	cfg.Quarantine = quarantine
	cfg.CheckpointPath = *checkpointPath
	cfg.Metrics = osess.Metrics
	cfg.ArrivalWindow = *whatifWindow

	hcfg := telemetry.HealthConfig{
		Mode:             ingestMode,
		Budget:           cfg.Budget,
		ChunkWindow:      *chunkWindow,
		Checkpointing:    *checkpointPath != "",
		SourceStaleAfter: *staleAfter,
	}
	if *quarantinePath != "" {
		hcfg.MaxQuarantineRate = defaultMaxQuarantineRate
	}

	var walCfg *serve.WALConfig
	if *walDir != "" {
		walCfg = &serve.WALConfig{
			Dir:             *walDir,
			SegmentBytes:    *walSegmentBytes,
			SyncBytes:       *walSyncBytes,
			DiskBudgetBytes: *walDiskBudget,
			CheckpointBytes: *walCheckpointBytes,
			Resume:          *resume,
		}
	}

	srv, err := serve.New(serve.Config{
		Sources:     sources,
		BufferBytes: *bufferBytes,
		WantTCP:     *intakeTCP != "",
		Engine:      cfg,
		Checkpoint:  cp,
		WAL:         walCfg,
		Health:      hcfg,
		Clock:       obs.SystemClock(),
		Log:         os.Stderr,
	})
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}

	ln, lerr := net.Listen("tcp", *listen)
	if lerr != nil {
		return fmt.Errorf("serve: HTTP listener: %w", lerr)
	}
	srv.StartHTTP(ln)
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "serve: intake http://%s/ingest?source=<id>  whatif http://%s/whatif\n", ln.Addr(), ln.Addr())
	if *listenAddrFile != "" {
		if werr := os.WriteFile(*listenAddrFile, []byte(ln.Addr().String()+"\n"), 0o644); werr != nil {
			return fmt.Errorf("serve: writing -listen-addr-file: %w", werr)
		}
	}
	if *intakeTCP != "" {
		tln, terr := net.Listen("tcp", *intakeTCP)
		if terr != nil {
			return fmt.Errorf("serve: TCP intake listener: %w", terr)
		}
		srv.StartTCP(tln)
		fmt.Fprintf(os.Stderr, "serve: raw TCP intake on %s\n", tln.Addr())
		if *intakeTCPAddrFile != "" {
			if werr := os.WriteFile(*intakeTCPAddrFile, []byte(tln.Addr().String()+"\n"), 0o644); werr != nil {
				return fmt.Errorf("serve: writing -intake-tcp-addr-file: %w", werr)
			}
		}
	}

	// Graceful drain on SIGTERM/SIGINT: listeners close, whatever
	// arrived folds in source order, the final snapshot prints, the
	// process exits 0.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sigCh)
	//lint:allow rawgo signal-to-drain relay, one goroutine for the process lifetime
	go func() {
		if _, ok := <-sigCh; ok {
			fmt.Fprintln(os.Stderr, "serve: draining (listeners closed, folding buffered input)")
			srv.Drain()
		}
	}()

	shardNote := ""
	if *shards > 1 {
		shardNote = fmt.Sprintf(", %d shards", *shards)
	}
	fmt.Fprintf(out, "serving %s (threshold %v, %s, %s mode%s)\n",
		strings.Join(sources, ", "), *threshold, snapshotLabel(*snapshotEvery), ingestMode, shardNote)
	if cp != nil {
		fmt.Fprintf(out, "resumed from %s (skipping %d already-processed lines)\n", *checkpointPath, cp.SkipLines())
	}
	fmt.Fprintln(out)

	final, perr := srv.Run(ctx, func(s *stream.Snapshot) error {
		return s.Render(out)
	})
	if perr == nil {
		perr = final.Render(out)
	}
	for _, st := range faults.Stats() {
		fmt.Fprintf(out, "fault site %s: hits=%d fires=%d\n", st.Site, st.Hits, st.Fires)
	}
	if perr == nil && *reportPath != "" {
		totals, chars, verdict := telemetry.StreamReportParts(final)
		rep := &telemetry.RunReport{
			Tool:            "serve",
			Inputs:          sources,
			Config:          cfg.Fingerprint(),
			Totals:          totals,
			Ingest:          final.Ingest,
			Verdict:         verdict,
			Characteristics: chars,
			Faults:          faults.Stats(),
			Obs:             osess.Metrics.Snapshot(),
		}
		if sweep := serve.WhatIfSweep(srv.Holder()); len(sweep) > 0 {
			rep.WhatIf = sweep
		}
		if pub, ok := srv.Holder().LatestWAL(); ok {
			rep.WAL = pub.Stats
		}
		if werr := rep.WriteFile(*reportPath); werr != nil {
			return fmt.Errorf("serve: %w", werr)
		}
		fmt.Fprintf(os.Stderr, "run report written to %s\n", *reportPath)
	}
	return perr
}
