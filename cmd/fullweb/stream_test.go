package main

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// streamTestLog generates a small deterministic trace once per test.
func streamTestLog(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.log")
	var out bytes.Buffer
	err := run([]string{"generate",
		"-profile", "NASA-Pub2", "-scale", "0.2", "-seed", "11", "-days", "2",
		"-out", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func runStream(t *testing.T, args ...string) string {
	t.Helper()
	var out bytes.Buffer
	if err := run(append([]string{"stream"}, args...), &out); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

// afterHeader drops the "streaming <paths> ..." line, which names the
// input files and so differs between plain and gzip invocations.
func afterHeader(t *testing.T, out string) string {
	t.Helper()
	_, rest, ok := strings.Cut(out, "\n")
	if !ok {
		t.Fatalf("no header line in output:\n%s", out)
	}
	return rest
}

// TestStreamDeterministicOutput is the CLI half of the determinism
// gate: byte-identical stdout across runs and across worker counts.
func TestStreamDeterministicOutput(t *testing.T) {
	log := streamTestLog(t)
	first := runStream(t, "-log", log)
	if runStream(t, "-log", log) != first {
		t.Fatal("two identical runs produced different output")
	}
	if runStream(t, "-log", log, "-parallel", "1") != first {
		t.Fatal("-parallel 1 changed the output")
	}
	if runStream(t, "-log", log, "-parallel", "7", "-chunk-lines", "33", "-chunk-window", "2") != first {
		t.Fatal("chunk geometry changed the output")
	}
	for _, want := range []string{"-- snapshot @", "-- final @", "requests=", "alpha_Hill"} {
		if !strings.Contains(first, want) {
			t.Errorf("output missing %q:\n%s", want, first)
		}
	}
}

// TestStreamTracingInvariance: enabling -trace must not change stdout
// by a byte (the obs layer writes spans elsewhere).
func TestStreamTracingInvariance(t *testing.T) {
	log := streamTestLog(t)
	plain := runStream(t, "-log", log)
	traceFile := filepath.Join(t.TempDir(), "trace.jsonl")
	traced := runStream(t, "-log", log, "-trace", traceFile)
	if traced != plain {
		t.Fatal("tracing changed stdout")
	}
	info, err := os.Stat(traceFile)
	if err != nil || info.Size() == 0 {
		t.Fatalf("trace file not written: %v", err)
	}
}

// TestStreamMatchesAnalyzeTotals: the final snapshot's totals line uses
// the exact format of fullweb analyze's header, so the smoke check is a
// literal substring match.
func TestStreamMatchesAnalyzeTotals(t *testing.T) {
	log := streamTestLog(t)
	var analyzeOut bytes.Buffer
	if err := run([]string{"analyze", "-log", log}, &analyzeOut); err != nil {
		t.Fatal(err)
	}
	var totals string
	for _, line := range strings.Split(analyzeOut.String(), "\n") {
		if strings.Contains(line, "requests=") {
			totals = line
			break
		}
	}
	if totals == "" {
		t.Fatalf("no totals line in analyze output:\n%s", analyzeOut.String())
	}
	streamOut := runStream(t, "-log", log, "-snapshot", "0")
	if !strings.Contains(streamOut, totals+"\n") {
		t.Fatalf("stream output lacks analyze's totals line %q:\n%s", totals, streamOut)
	}
}

// TestStreamGzipAndRotatedInput: a gzip segment, alone or mixed with a
// plain segment, flows through the same pipeline.
func TestStreamGzipAndRotatedInput(t *testing.T) {
	log := streamTestLog(t)
	text, err := os.ReadFile(log)
	if err != nil {
		t.Fatal(err)
	}
	plain := afterHeader(t, runStream(t, "-log", log))

	gzPath := log + ".gz"
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	if _, err := zw.Write(text); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(gzPath, gz.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := afterHeader(t, runStream(t, "-log", gzPath)); got != plain {
		t.Fatal("gzip input produced different snapshots")
	}

	// Split into a compressed older segment and a plain newer one.
	lines := strings.SplitAfter(strings.TrimSuffix(string(text), "\n"), "\n")
	half := len(lines) / 2
	oldSeg := filepath.Join(t.TempDir(), "old.gz")
	newSeg := filepath.Join(t.TempDir(), "new.log")
	var oldGz bytes.Buffer
	zw2 := gzip.NewWriter(&oldGz)
	if _, err := zw2.Write([]byte(strings.Join(lines[:half], ""))); err != nil {
		t.Fatal(err)
	}
	if err := zw2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(oldSeg, oldGz.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newSeg, []byte(strings.Join(lines[half:], "")), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := afterHeader(t, runStream(t, "-log", oldSeg, "-log", newSeg)); got != plain {
		t.Fatal("rotated gz+plain segments produced different snapshots")
	}
}

func TestStreamUsageErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"stream"}, &out); err == nil {
		t.Error("stream without -log should error")
	}
	if err := run([]string{"stream", "-log", ""}, &out); err == nil {
		t.Error("empty -log value should error")
	}
	if err := run([]string{"stream", "-log", "does-not-exist.log"}, &out); err == nil {
		t.Error("missing file should error")
	}
	log := streamTestLog(t)
	if err := run([]string{"stream", "-log", log, "-reservoir", "4"}, &out); err == nil {
		t.Error("tiny reservoir should be rejected by the engine")
	}
	if err := run([]string{"stream", "-log", log, "-shards", "0"}, &out); err == nil {
		t.Error("-shards 0 should be rejected")
	}
	if err := run([]string{"stream", "-log", log, "-shard-detail"}, &out); err == nil {
		t.Error("-shard-detail without -shards > 1 should be rejected")
	}
	if err := run([]string{"stream", "-log", log, "-quantile-cap", "17"}, &out); err == nil {
		t.Error("odd -quantile-cap should be rejected by the engine")
	}
}

// TestStreamShardedEquivalenceAndDetail is the CLI half of the
// shard-count-independence gate: everything after the header (which
// names the shard count) is byte-identical at -shards 1 and -shards 4,
// and -shard-detail appends the per-shard block after the report.
func TestStreamShardedEquivalenceAndDetail(t *testing.T) {
	log := streamTestLog(t)
	single := afterHeader(t, runStream(t, "-log", log, "-snapshot", "6h"))
	sharded := afterHeader(t, runStream(t, "-log", log, "-snapshot", "6h", "-shards", "4"))
	if sharded != single {
		t.Fatalf("-shards 4 output differs from single-shard:\n--- single ---\n%s--- sharded ---\n%s", single, sharded)
	}
	detail := runStream(t, "-log", log, "-shards", "4", "-shard-detail")
	if !strings.Contains(detail, "-- shards (4) --") || !strings.Contains(detail, "pooled request arrivals") {
		t.Fatalf("-shard-detail block missing:\n%s", detail)
	}
	if !strings.Contains(detail, ", 4 shards)") {
		t.Fatalf("header does not name the shard count:\n%s", detail)
	}
}
