// Command fullweb is the library's command-line front end:
//
//	fullweb generate -profile WVU -scale 0.05 -seed 1 -out wvu.log
//	fullweb analyze  -log wvu.log -server WVU
//	fullweb sessions -log wvu.log
//	fullweb stream   -log wvu.log -snapshot 6h
//	fullweb serve    -source s1 -source s2 -listen 127.0.0.1:8080
//
// generate synthesizes a Common Log Format trace for one of the paper's
// four server profiles; analyze runs the complete FULL-Web
// characterization pipeline on any CLF log; sessions prints the
// sessionization summary; stream runs the bounded-memory online
// pipeline with periodic snapshots (accepts gzip-rotated segments and
// stdin); serve runs the live intake server with online what-if
// capacity queries.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"fullweb/internal/core"
	"fullweb/internal/gof"
	"fullweb/internal/obs"
	"fullweb/internal/reliability"
	"fullweb/internal/report"
	"fullweb/internal/session"
	"fullweb/internal/stats"
	"fullweb/internal/stream"
	"fullweb/internal/telemetry"
	"fullweb/internal/weblog"
	"fullweb/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fullweb:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: fullweb <generate|analyze|sessions|stream|serve> [flags]")
	}
	switch args[0] {
	case "generate":
		return cmdGenerate(args[1:], out)
	case "analyze":
		return cmdAnalyze(args[1:], out)
	case "sessions":
		return cmdSessions(args[1:], out)
	case "reliability":
		return cmdReliability(args[1:], out)
	case "thresholds":
		return cmdThresholds(args[1:], out)
	case "fit":
		return cmdFit(args[1:], out)
	case "stream":
		return cmdStream(args[1:], out)
	case "serve":
		return cmdServe(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (want generate, analyze, sessions, reliability, thresholds, fit, stream or serve)", args[0])
	}
}

func cmdGenerate(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("generate", flag.ContinueOnError)
	profileName := fs.String("profile", "ClarkNet", "server profile: WVU, ClarkNet, CSEE or NASA-Pub2")
	profileFile := fs.String("profile-file", "", "JSON profile file (e.g. from 'fullweb fit -out'); overrides -profile")
	scale := fs.Float64("scale", 0.05, "fraction of the paper's Table 1 volumes")
	seed := fs.Int64("seed", 1, "random seed")
	days := fs.Int("days", 7, "trace horizon in days")
	outPath := fs.String("out", "", "output file (default stdout)")
	baseline := fs.Bool("poisson-baseline", false, "generate the homogeneous-Poisson baseline instead of the FULL-Web model")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var profile workload.Profile
	if *profileFile != "" {
		var err error
		if profile, err = workload.LoadProfile(*profileFile); err != nil {
			return err
		}
	} else {
		found := false
		for _, p := range workload.AllProfiles() {
			if p.Name == *profileName {
				profile = p
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("unknown profile %q", *profileName)
		}
	}
	cfg := workload.Config{Scale: *scale, Seed: *seed, Days: *days}
	var (
		trace *workload.Trace
		err   error
	)
	if *baseline {
		trace, err = workload.GeneratePoissonBaseline(profile, cfg)
	} else {
		trace, err = workload.Generate(profile, cfg)
	}
	if err != nil {
		return err
	}
	w := out
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return fmt.Errorf("creating %s: %w", *outPath, err)
		}
		defer f.Close()
		w = f
	}
	if err := weblog.WriteAll(w, trace.Records); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generated %s records=%d sessions=%d\n",
		profile.Name, len(trace.Records), trace.PlantedSessions)
	return nil
}

func loadLog(ctx context.Context, path string) (*weblog.Store, error) {
	store, _, err := loadLogHardened(ctx, path, stream.ModeLenient, stream.Budget{}, "")
	if err != nil {
		return nil, err
	}
	return store, nil
}

// loadLogHardened reads a CLF log under an ingestion mode: strict
// fails on the first malformed line with its position, the other
// modes collect reject accounting (optionally quarantining raw lines)
// and let the budget decide the DegradedInput verdict. Opens go
// through the bounded retry policy for transient failures.
func loadLogHardened(ctx context.Context, path string, mode stream.Mode, budget stream.Budget, quarantinePath string) (*weblog.Store, stream.IngestStats, error) {
	var st stream.IngestStats
	f, err := weblog.OpenRetry(ctx, path, weblog.DefaultRetryPolicy(time.Sleep))
	if err != nil {
		return nil, st, fmt.Errorf("opening log: %w", err)
	}
	defer f.Close()
	records, bad, err := weblog.ReadAllCtx(ctx, f)
	if err != nil {
		return nil, st, err
	}
	if mode == stream.ModeStrict && len(bad) > 0 {
		return nil, st, fmt.Errorf("strict mode: %w", bad[0])
	}
	var quarantine *os.File
	if quarantinePath != "" && len(bad) > 0 {
		if quarantine, err = os.Create(quarantinePath); err != nil {
			return nil, st, fmt.Errorf("creating quarantine: %w", err)
		}
		defer quarantine.Close()
	}
	for _, pe := range bad {
		st.Rejected++
		st.Malformed++
		if len(st.Samples) < 5 {
			st.Samples = append(st.Samples, fmt.Sprintf("line %d: %v", pe.LineNumber, pe.Err))
		}
		if quarantine != nil {
			if _, err := fmt.Fprintln(quarantine, pe.Line); err != nil {
				return nil, st, fmt.Errorf("writing quarantine: %w", err)
			}
		}
	}
	st.Evaluate(mode, budget, int64(len(records)))
	if len(records) == 0 {
		return nil, st, fmt.Errorf("no parseable records in %s", path)
	}
	return weblog.NewStore(records), st, nil
}

// printInputHealth renders the analyze-side input accounting in the
// same shape as the stream snapshots' input line.
func printInputHealth(out io.Writer, st stream.IngestStats) {
	health := "ok"
	if st.Degraded {
		health = "DEGRADED"
	}
	fmt.Fprintf(out, "input: %s rejected=%s (malformed=%s oversized=%s)\n",
		health, report.Count(st.Rejected), report.Count(st.Malformed), report.Count(st.Oversized))
	for _, reason := range st.Reasons {
		fmt.Fprintf(out, "input: budget breach: %s\n", reason)
	}
	for _, sample := range st.Samples {
		fmt.Fprintf(out, "reject sample: %s\n", sample)
	}
}

func cmdAnalyze(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	logPath := fs.String("log", "", "CLF log file to analyze (required)")
	server := fs.String("server", "log", "label for the report")
	workers := fs.Int("parallel", 0, "worker pool size (0 = all CPUs, 1 = sequential); results are identical at any setting")
	mode := fs.String("mode", "budgeted", "ingestion mode: budgeted (count and degrade), strict (fail on first malformed line) or lenient (count only)")
	quarantinePath := fs.String("quarantine", "", "write rejected raw lines to this file")
	maxRejects := fs.Int64("max-rejects", 0, "budgeted mode: degrade after this many rejected lines (0 = no absolute cap)")
	maxRejectRate := fs.Float64("max-reject-rate", 0, "budgeted mode: degrade when rejects/parse-attempts exceeds this rate (0 = no rate cap)")
	reportPath := fs.String("report", "", "write the end-of-run JSON run report to this file")
	var obsCfg obs.CLIConfig
	obsCfg.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	obsCfg.WantRegistry = *reportPath != ""
	if *logPath == "" {
		return fmt.Errorf("analyze: -log is required")
	}
	if *workers < 0 {
		return fmt.Errorf("analyze: -parallel must be >= 0, got %d", *workers)
	}
	ingestMode, err := stream.ParseMode(*mode)
	if err != nil {
		return fmt.Errorf("analyze: %w", err)
	}
	sess, err := obsCfg.Start(obs.SystemClock(), os.Stderr)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := sess.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	ctx := sess.Context(context.Background())
	budget := stream.Budget{MaxRejects: *maxRejects, MaxRejectRate: *maxRejectRate}
	store, ingest, err := loadLogHardened(ctx, *logPath, ingestMode, budget, *quarantinePath)
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig()
	cfg.Workers = *workers
	cfg.Metrics = sess.Metrics
	analyzer, err := core.NewAnalyzer(cfg)
	if err != nil {
		return err
	}
	model, err := analyzer.AnalyzeCtx(ctx, *server, store)
	if err != nil {
		return err
	}
	printModel(out, model)
	printInputHealth(out, ingest)
	if *reportPath != "" {
		rep := telemetry.RunReport{
			Tool:   "analyze",
			Inputs: []string{*logPath},
			Config: struct {
				Server string        `json:"server"`
				Mode   string        `json:"mode"`
				Budget stream.Budget `json:"budget"`
			}{*server, ingestMode.String(), budget},
			Totals: telemetry.ReportTotals{
				Records:     int64(model.Requests),
				Sessions:    int64(model.Sessions),
				Bytes:       model.BytesTransferred,
				SpanSeconds: model.Span.Seconds(),
			},
			Ingest:          ingest,
			Verdict:         telemetry.Verdict(ingest),
			Characteristics: analyzeCharacteristics(model),
			Obs:             sess.Metrics.Snapshot(),
		}
		if err := rep.WriteFile(*reportPath); err != nil {
			return fmt.Errorf("analyze: %w", err)
		}
		fmt.Fprintf(os.Stderr, "run report written to %s\n", *reportPath)
	}
	return nil
}

// analyzeCharacteristics maps the model's whole-week tail rows into the
// run report's shared characteristic shape (analyze has no streaming
// quantile sketches, so only the tail fields are filled).
func analyzeCharacteristics(m *core.FullWebModel) []telemetry.ReportCharacteristic {
	chars := make([]telemetry.ReportCharacteristic, 0, len(core.AllCharacteristics()))
	for _, name := range core.AllCharacteristics() {
		tbl, ok := m.Tails[name]
		if !ok {
			continue
		}
		row, ok := tbl.Rows[core.IntervalWeek]
		if !ok {
			continue
		}
		chars = append(chars, telemetry.ReportCharacteristic{
			Name:       name,
			N:          int64(row.N),
			HillOK:     row.Status != core.TailNA,
			HillStable: row.Hill.Stable,
			HillAlpha:  row.Hill.Alpha,
		})
	}
	return chars
}

// printModel renders a FullWebModel as the paper-style report.
func printModel(out io.Writer, m *core.FullWebModel) {
	fmt.Fprintf(out, "FULL-Web model: %s\n", m.Server)
	fmt.Fprintf(out, "  requests=%s sessions=%s bytes=%s span=%v\n\n",
		report.Count(int64(m.Requests)), report.Count(int64(m.Sessions)),
		report.Count(m.BytesTransferred), m.Span)

	printArrival := func(title string, a *core.ArrivalAnalysis) {
		fmt.Fprintf(out, "%s (mean %.3f/s over %s seconds)\n", title, a.MeanPerSecond, report.Count(int64(a.N)))
		fmt.Fprintf(out, "  stationary initially: %v (KPSS %.3f); trend removed: %v; period removed: %v",
			a.Stationarity.InitialKPSS.Stationary, a.Stationarity.InitialKPSS.Statistic,
			a.Stationarity.TrendRemoved, a.Stationarity.PeriodRemoved)
		if a.Stationarity.PeriodRemoved {
			fmt.Fprintf(out, " (period %d s)", a.Stationarity.Period)
		}
		fmt.Fprintln(out)
		tb := report.NewTable("estimator", "H (raw)", "H (stationary)", "95% CI (stationary)")
		for _, raw := range a.RawHurst.Estimates {
			st, ok := a.StationaryHurst.ByMethod(raw.Method)
			ci := ""
			hSt := ""
			if ok {
				hSt = report.F(st.H)
				if st.HasCI {
					ci = fmt.Sprintf("[%s, %s]", report.F(st.CI95Low), report.F(st.CI95High))
				}
			}
			tb.AddRow(raw.Method.String(), report.F(raw.H), hSt, ci)
		}
		fmt.Fprint(out, tb.String())
		fmt.Fprintln(out)
	}
	printArrival("Request arrivals", m.RequestArrivals)
	printArrival("Session arrivals", m.SessionArrivals)

	fmt.Fprintln(out, "Poisson batteries (accepted?)")
	tb := report.NewTable("level", "window requests", "requests", "sessions")
	levels := []weblog.WorkloadLevel{weblog.Low, weblog.Med, weblog.High}
	for _, level := range levels {
		w := m.TypicalWindows[level]
		req := verdictString(m.RequestPoisson[level])
		sess := verdictString(m.SessionPoisson[level])
		tb.AddRow(level.String(), report.Count(int64(w.Requests)), req, sess)
	}
	fmt.Fprint(out, tb.String())
	fmt.Fprintln(out)

	chars := []string{core.CharSessionLength, core.CharRequestsPerSession, core.CharBytesPerSession}
	for _, char := range chars {
		table := m.Tails[char]
		if table == nil {
			continue
		}
		fmt.Fprintf(out, "Heavy-tail analysis: %s\n", char)
		tb := report.NewTable("interval", "n", "alpha_Hill", "alpha_LLCD", "R^2", "p(Pareto)", "p(lognormal)", "xval")
		intervals := make([]string, 0, len(table.Rows))
		for k := range table.Rows {
			intervals = append(intervals, k)
		}
		sort.Strings(intervals)
		for _, interval := range intervals {
			row := table.Rows[interval]
			xval := "-"
			if row.Status != core.TailNA {
				if row.CrossValidated(0.5) {
					xval = "agree"
				} else {
					xval = "diverge"
				}
			}
			tb.AddRow(interval, report.Count(int64(row.N)), hillString(row), llcdString(row), r2String(row),
				curvString(row, true), curvString(row, false), xval)
		}
		fmt.Fprint(out, tb.String())
		fmt.Fprintln(out)
	}
}

func verdictString(p *core.PoissonAnalysis) string {
	if p == nil || len(p.Runs) == 0 {
		return "NA"
	}
	if p.Accepted() {
		return "Poisson accepted"
	}
	return "rejected"
}

func hillString(row core.TailAnalysis) string {
	switch row.Status {
	case core.TailNA:
		return "NA"
	case core.TailNS:
		return "NS"
	default:
		return report.F2(row.Hill.Alpha)
	}
}

func llcdString(row core.TailAnalysis) string {
	if row.Status == core.TailNA {
		return "NA"
	}
	return report.F(row.LLCD.Alpha)
}

func r2String(row core.TailAnalysis) string {
	if row.Status == core.TailNA {
		return "NA"
	}
	return report.F(row.LLCD.R2)
}

func curvString(row core.TailAnalysis, pareto bool) string {
	if !row.CurvatureOK {
		return "-"
	}
	if pareto {
		return report.F(row.Curvature.PPareto)
	}
	return report.F(row.Curvature.PLognormal)
}

func cmdSessions(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("sessions", flag.ContinueOnError)
	logPath := fs.String("log", "", "CLF log file (required)")
	threshold := fs.Duration("threshold", session.DefaultThreshold, "inactivity threshold")
	var obsCfg obs.CLIConfig
	obsCfg.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *logPath == "" {
		return fmt.Errorf("sessions: -log is required")
	}
	osess, err := obsCfg.Start(obs.SystemClock(), os.Stderr)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := osess.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	ctx := osess.Context(context.Background())
	store, err := loadLog(ctx, *logPath)
	if err != nil {
		return err
	}
	sessions, err := session.SessionizeCtx(ctx, store.All(), *threshold)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "records=%s sessions=%s threshold=%v\n",
		report.Count(int64(store.Len())), report.Count(int64(len(sessions))), *threshold)
	for _, c := range []struct {
		name   string
		values []float64
	}{
		{"duration (s)", session.PositiveOnly(session.Durations(sessions))},
		{"requests", session.RequestCounts(sessions)},
		{"bytes", session.ByteCounts(sessions)},
	} {
		if len(c.values) < 2 {
			continue
		}
		s, err := stats.Summarize(c.values)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%-14s n=%d mean=%.1f median=%.1f p99=%.1f max=%.1f\n",
			c.name, s.N, s.Mean, s.Median, mustQuantile(c.values, 0.99), s.Max)
	}
	// A quick look at the arrival process.
	secs := session.StartSeconds(sessions)
	if len(secs) > 100 {
		_, ok := poissonQuickCheck(secs)
		if ok {
			fmt.Fprintln(out, "session arrivals: consistent with Poisson on this window")
		} else {
			fmt.Fprintln(out, "session arrivals: NOT Poisson (see paper §5.1.2)")
		}
	}
	return nil
}

func mustQuantile(x []float64, p float64) float64 {
	v, err := stats.Quantile(x, p)
	if err != nil {
		return 0
	}
	return v
}

// poissonQuickCheck runs the battery over the full span divided in four.
func poissonQuickCheck(secs []int64) (*gof.BatteryResult, bool) {
	start := secs[0]
	dur := secs[len(secs)-1] - start + 1
	dur -= dur % 4
	if dur <= 0 {
		return nil, false
	}
	res, err := gof.RunPoissonBattery(secs, start, dur, gof.DefaultBatteryConfig())
	if err != nil {
		return nil, false
	}
	return res, res.PoissonAccepted()
}

func cmdReliability(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("reliability", flag.ContinueOnError)
	logPath := fs.String("log", "", "CLF log file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *logPath == "" {
		return fmt.Errorf("reliability: -log is required")
	}
	store, err := loadLog(context.Background(), *logPath)
	if err != nil {
		return err
	}
	rep, err := reliability.Analyze(store.All(), nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "requests=%s errors=%s (4xx=%s, 5xx=%s)\n",
		report.Count(int64(rep.Requests)), report.Count(int64(rep.Errors)),
		report.Count(int64(rep.ClientErrors)), report.Count(int64(rep.ServerErrors)))
	fmt.Fprintf(out, "request reliability: %.4f\n", rep.RequestReliability)
	fmt.Fprintf(out, "session reliability: %.4f (%s of %s sessions error-free)\n",
		rep.SessionReliability,
		report.Count(int64(rep.ErrorFreeSessions)), report.Count(int64(rep.Sessions)))
	if len(rep.TopErrors) > 0 {
		tb := report.NewTable("status", "count")
		limit := len(rep.TopErrors)
		if limit > 5 {
			limit = 5
		}
		for _, sc := range rep.TopErrors[:limit] {
			tb.AddRow(fmt.Sprint(sc.Status), report.Count(int64(sc.Count)))
		}
		fmt.Fprint(out, tb.String())
	}
	if rep.ErrorDispersion > 0 {
		fmt.Fprintf(out, "hourly error dispersion (VMR): %.2f", rep.ErrorDispersion)
		if rep.ErrorDispersion > 2 {
			fmt.Fprint(out, "  <- errors arrive in bursts")
		}
		fmt.Fprintln(out)
	}
	return nil
}

func cmdThresholds(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("thresholds", flag.ContinueOnError)
	logPath := fs.String("log", "", "CLF log file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *logPath == "" {
		return fmt.Errorf("thresholds: -log is required")
	}
	store, err := loadLog(context.Background(), *logPath)
	if err != nil {
		return err
	}
	points, err := session.ThresholdStudy(store.All(), session.DefaultThresholdGrid())
	if err != nil {
		return err
	}
	tb := report.NewTable("threshold", "sessions", "mean requests/session", "mean duration (s)")
	for _, p := range points {
		tb.AddRow(p.Threshold.String(), report.Count(int64(p.Sessions)),
			report.F2(p.MeanRequests), report.F2(p.MeanDuration))
	}
	fmt.Fprint(out, tb.String())
	fmt.Fprintln(out, "\nthe paper adopts 30m: the session count has flattened by then (section 2)")
	return nil
}

func cmdFit(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("fit", flag.ContinueOnError)
	logPath := fs.String("log", "", "CLF log file (required)")
	server := fs.String("server", "log", "name for the fitted profile")
	outPath := fs.String("out", "", "write the fitted profile as JSON to this file")
	workers := fs.Int("parallel", 0, "worker pool size (0 = all CPUs, 1 = sequential); results are identical at any setting")
	var obsCfg obs.CLIConfig
	obsCfg.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *logPath == "" {
		return fmt.Errorf("fit: -log is required")
	}
	if *workers < 0 {
		return fmt.Errorf("fit: -parallel must be >= 0, got %d", *workers)
	}
	sess, err := obsCfg.Start(obs.SystemClock(), os.Stderr)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := sess.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	ctx := sess.Context(context.Background())
	store, err := loadLog(ctx, *logPath)
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig()
	cfg.Workers = *workers
	cfg.Metrics = sess.Metrics
	analyzer, err := core.NewAnalyzer(cfg)
	if err != nil {
		return err
	}
	model, err := analyzer.AnalyzeCtx(ctx, *server, store)
	if err != nil {
		return err
	}
	profile, err := workload.FitProfile(model)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "fitted profile %q (normalized to one week):\n", profile.Name)
	tb := report.NewTable("parameter", "value")
	tb.AddRow("requests/week", report.Count(int64(profile.RequestsWeek)))
	tb.AddRow("sessions/week", report.Count(int64(profile.SessionsWeek)))
	tb.AddRow("MB/week", report.F2(profile.MBWeek))
	tb.AddRow("Hurst (session arrivals)", report.F(profile.Hurst))
	tb.AddRow("alpha session length", report.F(profile.AlphaDuration))
	tb.AddRow("alpha requests/session", report.F(profile.AlphaRequests))
	tb.AddRow("alpha bytes/session", report.F(profile.AlphaBytes))
	tb.AddRow("diurnal amplitude", report.F2(profile.DiurnalAmplitude))
	tb.AddRow("trend slope", report.F2(profile.TrendSlope))
	fmt.Fprint(out, tb.String())
	if *outPath != "" {
		if err := profile.SaveProfile(*outPath); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nprofile written to %s; regenerate with: fullweb generate -profile-file %s\n", *outPath, *outPath)
	} else {
		fmt.Fprintln(out, "\nsave with -out profile.json, then: fullweb generate -profile-file profile.json")
	}
	return nil
}
