package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// waitServeAddr polls a -listen-addr-file until the server writes its
// bound address, then polls /readyz until the intake (journal
// included) is ready to acknowledge deliveries.
func waitServeAddr(t *testing.T, addrFile string) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var base string
	for {
		if b, err := os.ReadFile(addrFile); err == nil && strings.TrimSpace(string(b)) != "" {
			base = "http://" + strings.TrimSpace(string(b))
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("serve never wrote its address file")
		}
		time.Sleep(10 * time.Millisecond)
	}
	for {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return base
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("serve never became ready")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// chunkLines splits text into n consecutive line-aligned chunks.
func chunkLines(text []byte, n int) [][]byte {
	lines := bytes.SplitAfter(text, []byte("\n"))
	if len(lines) > 0 && len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	}
	per := (len(lines) + n - 1) / n
	var chunks [][]byte
	for lo := 0; lo < len(lines); lo += per {
		hi := lo + per
		if hi > len(lines) {
			hi = len(lines)
		}
		chunks = append(chunks, bytes.Join(lines[lo:hi], nil))
	}
	return chunks
}

// TestServeWALCrashRecoveryCLI is the operator-facing chaos drill
// through the CLI: `serve -wal -checkpoint` journals stamped
// deliveries and is killed by an injected fold fault; `serve -wal
// -checkpoint -resume` then replays the journal while the client
// blindly redelivers every chunk with the same IDs. The recovered
// final snapshot must match an uninterrupted `stream` run byte for
// byte, and the run report must carry the journal's final state.
func TestServeWALCrashRecoveryCLI(t *testing.T) {
	log := streamTestLog(t)
	text, err := os.ReadFile(log)
	if err != nil {
		t.Fatal(err)
	}
	baseline := runStream(t, "-log", log, "-snapshot", "6h")
	chunks := chunkLines(text, 8)

	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	ckpt := filepath.Join(dir, "serve.ckpt")
	report := filepath.Join(dir, "report.json")

	feed := func(base string) int {
		acked := 0
		for i, chunk := range chunks {
			url := fmt.Sprintf("%s/ingest?source=s1&delivery=c%d", base, i)
			resp, err := http.Post(url, "", bytes.NewReader(chunk))
			if err != nil {
				continue // the doomed run may die mid-feed
			}
			if resp.StatusCode == http.StatusOK {
				acked++
			}
			resp.Body.Close()
		}
		if resp, err := http.Post(base+"/ingest?source=s1&complete=1", "", nil); err == nil {
			resp.Body.Close()
		}
		return acked
	}

	// Run 1: journaling, checkpointing on WAL growth, killed by an
	// injected fold fault.
	addr1 := filepath.Join(dir, "addr1")
	errCh := make(chan error, 1)
	go func() {
		var out bytes.Buffer
		errCh <- run([]string{"serve", "-source", "s1",
			"-listen", "127.0.0.1:0", "-listen-addr-file", addr1,
			"-wal", walDir, "-wal-checkpoint-bytes", "8192",
			"-checkpoint", ckpt, "-chunk-lines", "64", "-snapshot", "6h",
			"-faults", "stream.fold=hit:8"}, &out)
	}()
	base := waitServeAddr(t, addr1)
	acked := feed(base)
	if acked == 0 {
		t.Fatal("doomed run acknowledged nothing; the drill needs journaled deliveries")
	}
	if rerr := <-errCh; rerr == nil || !strings.Contains(rerr.Error(), "injected fault") {
		t.Fatalf("run 1 did not die on the injected fault: %v", rerr)
	}

	// Run 2: -resume replays the journal (splicing the checkpoint if
	// one landed before the crash) and dedups the blind redelivery.
	addr2 := filepath.Join(dir, "addr2")
	var out2 bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"serve", "-source", "s1",
			"-listen", "127.0.0.1:0", "-listen-addr-file", addr2,
			"-wal", walDir, "-checkpoint", ckpt, "-resume",
			"-snapshot", "6h", "-report", report}, &out2)
	}()
	base2 := waitServeAddr(t, addr2)
	feed(base2)
	if rerr := <-done; rerr != nil {
		t.Fatalf("recovery run: %v", rerr)
	}
	if got, want := finalBlock(t, out2.String()), finalBlock(t, baseline); got != want {
		t.Fatalf("recovered final snapshot differs from uninterrupted stream:\n--- want ---\n%s--- got ---\n%s", want, got)
	}

	// The run report carries the journal's final published state.
	raw, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		WAL struct {
			JournaledBytes int64 `json:"journaled_bytes"`
			ReplayedBytes  int64 `json:"replayed_bytes"`
			Deliveries     int64 `json:"deliveries"`
		} `json:"wal"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.WAL.JournaledBytes != int64(len(text)) || rep.WAL.ReplayedBytes == 0 || rep.WAL.Deliveries != int64(len(chunks)) {
		t.Fatalf("report wal stats %+v, want %d journaled bytes over %d deliveries with a replayed prefix", rep.WAL, len(text), len(chunks))
	}
}

// TestServeWALUsageErrors: -resume now accepts -wal as its recovery
// source, but still refuses to run with neither.
func TestServeWALUsageErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"serve", "-source", "s", "-listen", "127.0.0.1:0", "-resume"}, &out); err == nil || !strings.Contains(err.Error(), "-checkpoint or -wal") {
		t.Errorf("-resume without -checkpoint/-wal: %v", err)
	}
}
