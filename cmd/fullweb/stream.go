package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"time"

	"fullweb/internal/faultpoint"
	"fullweb/internal/obs"
	"fullweb/internal/session"
	"fullweb/internal/stream"
	"fullweb/internal/telemetry"
	"fullweb/internal/weblog"
)

// cmdStream is the bounded-memory online pipeline: it tails one or more
// CLF logs (plain or gzip-rotated segments, or stdin) through
// internal/stream and prints periodic trace-time snapshots plus a final
// one whose totals match `fullweb analyze` on the same input exactly.
//
//	fullweb stream -log access.log
//	fullweb stream -log access.log.1.gz -log access.log.0.gz -log access.log
//	tail -F access.log | fullweb stream -log - -snapshot 1h
//
// Robustness controls (DESIGN.md §11): -mode picks the ingestion
// policy (budgeted, strict, lenient), -quarantine captures rejected
// raw lines, -checkpoint persists engine state at each snapshot and
// -resume restarts from it, and -faults (or FULLWEB_FAULTS) arms
// deterministic fault injection for drills.
func cmdStream(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("stream", flag.ContinueOnError)
	var logs []string
	fs.Func("log", "CLF log file, .gz accepted, or '-' for stdin; repeat the flag for rotated segments in oldest-first order (required)", func(v string) error {
		if v == "" {
			return fmt.Errorf("empty -log value")
		}
		logs = append(logs, v)
		return nil
	})
	threshold := fs.Duration("threshold", session.DefaultThreshold, "session inactivity threshold")
	snapshotEvery := fs.Duration("snapshot", 6*time.Hour, "trace-time between snapshots (0 = final only)")
	workers := fs.Int("parallel", 0, "parse worker pool size (0 = all CPUs, 1 = sequential); snapshots are identical at any setting")
	shards := fs.Int("shards", 1, "hash-partition engine state by host into N mergeable shards; snapshots are the deterministic shard merge")
	shardDetail := fs.Bool("shard-detail", false, "after the final snapshot, print the per-shard breakdown and pooled per-shard Hurst estimates (requires -shards > 1)")
	reservoir := fs.Int("reservoir", 8192, "per-characteristic Hill reservoir capacity")
	quantileCap := fs.Int("quantile-cap", stream.DefaultQuantileCap, "per-characteristic quantile sketch capacity (even, >= 16)")
	seed := fs.Int64("seed", 1, "reservoir sampling seed")
	chunkLines := fs.Int("chunk-lines", 0, "lines per parse chunk (0 = default)")
	chunkWindow := fs.Int("chunk-window", 0, "parse chunks in flight (0 = default); bounds memory with -parallel")
	mode := fs.String("mode", "budgeted", "ingestion mode: budgeted (count, quarantine, degrade), strict (fail on first reject) or lenient (count only)")
	quarantinePath := fs.String("quarantine", "", "append rejected raw lines to this file (budgeted/lenient modes)")
	checkpointPath := fs.String("checkpoint", "", "write a resumable engine checkpoint here at every snapshot boundary")
	resume := fs.Bool("resume", false, "resume from the -checkpoint file instead of starting fresh")
	maxRejects := fs.Int64("max-rejects", 0, "budgeted mode: degrade after this many rejected lines (0 = no absolute cap)")
	maxRejectRate := fs.Float64("max-reject-rate", 0, "budgeted mode: degrade when rejects/parse-attempts exceeds this rate (0 = no rate cap)")
	maxClamped := fs.Int64("max-clamped", 0, "budgeted mode: degrade after this many clamped non-monotonic timestamps (0 = no cap)")
	maxFieldBytes := fs.Int("max-field-bytes", 0, "reject records whose host or path exceeds this many bytes (0 = no limit)")
	faultSpec := fs.String("faults", "", "deterministic fault-injection spec, e.g. 'stream.fold=hit:3;weblog.read=rate:0.01,seed:7' (default $FULLWEB_FAULTS)")
	listen := fs.String("listen", "", "serve read-only live telemetry (/metrics, /snapshot, /healthz, /readyz) on this address for the run's lifetime (e.g. 127.0.0.1:9090; ':0' picks a free port)")
	listenAddrFile := fs.String("listen-addr-file", "", "write the telemetry listener's bound address to this file (useful with -listen :0)")
	reportPath := fs.String("report", "", "write the end-of-run JSON run report to this file")
	linger := fs.Duration("linger", 0, "keep the process (and its -listen telemetry) alive this long after a successful run")
	var obsCfg obs.CLIConfig
	obsCfg.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(logs) == 0 {
		return fmt.Errorf("stream: at least one -log is required")
	}
	if *workers < 0 {
		return fmt.Errorf("stream: -parallel must be >= 0, got %d", *workers)
	}
	ingestMode, err := stream.ParseMode(*mode)
	if err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	if *resume && *checkpointPath == "" {
		return fmt.Errorf("stream: -resume requires -checkpoint")
	}
	if *shards < 1 {
		return fmt.Errorf("stream: -shards must be >= 1, got %d", *shards)
	}
	if *shardDetail && *shards == 1 {
		return fmt.Errorf("stream: -shard-detail requires -shards > 1")
	}
	if *listenAddrFile != "" && *listen == "" {
		return fmt.Errorf("stream: -listen-addr-file requires -listen")
	}
	// The telemetry service and the run report both read live
	// instruments, so they force a registry even without -metrics.
	obsCfg.WantRegistry = *listen != "" || *reportPath != ""
	osess, err := obsCfg.Start(obs.SystemClock(), os.Stderr)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := osess.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	ctx := osess.Context(context.Background())

	// Arm fault injection. The spec is deterministic, so a faulted run
	// is reproducible bit for bit from the command line alone.
	spec := *faultSpec
	if spec == "" {
		spec = os.Getenv("FULLWEB_FAULTS")
	}
	var faults *faultpoint.Set
	if spec != "" {
		if faults, err = faultpoint.Parse(spec); err != nil {
			return fmt.Errorf("stream: %w", err)
		}
		ctx = faultpoint.With(ctx, faults)
	}

	// Load the checkpoint before touching any output state: a corrupt
	// or mismatched checkpoint must abort with everything untouched.
	var cp *stream.Checkpoint
	if *resume {
		if cp, err = stream.LoadCheckpoint(*checkpointPath); err != nil {
			return fmt.Errorf("stream: %w", err)
		}
	}

	// Each segment is sniffed for gzip individually, so rotated inputs
	// may freely mix compressed and plain segments. Opens go through
	// the bounded retry policy: a transiently missing rotated segment
	// (mid-rotation rename) gets three attempts before the run fails.
	readers := make([]io.Reader, 0, len(logs))
	var closers []io.Closer
	defer func() {
		for _, c := range closers {
			if cerr := c.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
	}()
	for _, path := range logs {
		var raw io.Reader
		if path == "-" {
			raw = os.Stdin
		} else {
			f, ferr := weblog.OpenRetry(ctx, path, weblog.DefaultRetryPolicy(time.Sleep))
			if ferr != nil {
				return fmt.Errorf("stream: opening log: %w", ferr)
			}
			closers = append(closers, f)
			raw = f
		}
		dr, derr := weblog.MaybeDecompress(raw)
		if derr != nil {
			return fmt.Errorf("stream: %s: %w", path, derr)
		}
		readers = append(readers, dr)
	}

	// The quarantine sink. On resume it is truncated to the offset the
	// checkpoint recorded, discarding lines quarantined after the last
	// durable state, then reopened for append — so the resumed run's
	// quarantine is byte-identical to an uninterrupted one.
	var quarantine io.Writer
	if *quarantinePath != "" {
		var offset int64
		if cp != nil {
			offset = cp.QuarantineOffset()
		}
		qf, qerr := openQuarantine(*quarantinePath, offset)
		if qerr != nil {
			return fmt.Errorf("stream: %w", qerr)
		}
		closers = append(closers, qf)
		quarantine = qf
	}

	cfg := stream.DefaultConfig()
	cfg.Threshold = *threshold
	cfg.SnapshotEvery = *snapshotEvery
	cfg.Workers = *workers
	cfg.Shards = *shards
	cfg.ReservoirCap = *reservoir
	cfg.QuantileCap = *quantileCap
	cfg.Seed = *seed
	cfg.Chunk = weblog.ChunkConfig{Lines: *chunkLines, Window: *chunkWindow, MaxFieldBytes: *maxFieldBytes}
	cfg.Mode = ingestMode
	cfg.Budget = stream.Budget{MaxRejects: *maxRejects, MaxRejectRate: *maxRejectRate, MaxClamped: *maxClamped}
	cfg.Quarantine = quarantine
	cfg.CheckpointPath = *checkpointPath
	cfg.Metrics = osess.Metrics

	// The live telemetry service: the engine publishes copy-on-publish
	// views into the holder; the HTTP mux reads only published values
	// and the (atomic) registry instruments, so scraping cannot perturb
	// the run — output stays byte-identical with -listen on or off.
	if *listen != "" {
		holder := telemetry.NewHolder(obs.SystemClock())
		hcfg := telemetry.HealthConfig{
			Mode:          ingestMode,
			Budget:        cfg.Budget,
			ChunkWindow:   *chunkWindow,
			Checkpointing: *checkpointPath != "",
		}
		if *quarantinePath != "" {
			hcfg.MaxQuarantineRate = defaultMaxQuarantineRate
		}
		health := telemetry.NewHealth(hcfg, holder, osess.Metrics, obs.SystemClock())
		ln, lerr := net.Listen("tcp", *listen)
		if lerr != nil {
			return fmt.Errorf("stream: telemetry listener: %w", lerr)
		}
		srv := telemetry.NewServer(osess.Metrics, holder, health)
		srv.Serve(ln)
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "telemetry: http://%s/ (/metrics /snapshot /healthz /readyz)\n", ln.Addr())
		if *listenAddrFile != "" {
			if werr := os.WriteFile(*listenAddrFile, []byte(ln.Addr().String()+"\n"), 0o644); werr != nil {
				return fmt.Errorf("stream: writing -listen-addr-file: %w", werr)
			}
		}
		cfg.Telemetry = holder
	}

	var engine *stream.Engine
	if cp != nil {
		engine, err = stream.ResumeEngine(cfg, cp)
	} else {
		engine, err = stream.NewEngine(cfg)
	}
	if err != nil {
		return err
	}
	// The shard count is appended only when sharding is on, so the
	// single-shard header — and with it the whole report — stays
	// byte-identical to every earlier release.
	shardNote := ""
	if *shards > 1 {
		shardNote = fmt.Sprintf(", %d shards", *shards)
	}
	fmt.Fprintf(out, "streaming %s (threshold %v, %s, %s mode%s)\n",
		strings.Join(logs, ", "), *threshold, snapshotLabel(*snapshotEvery), ingestMode, shardNote)
	if cp != nil {
		fmt.Fprintf(out, "resumed from %s (skipping %d already-processed lines)\n", *checkpointPath, cp.SkipLines())
	}
	fmt.Fprintln(out)
	final, perr := engine.ProcessCtx(ctx, io.MultiReader(readers...), func(s *stream.Snapshot) error {
		return s.Render(out)
	})
	if perr == nil {
		perr = final.Render(out)
	}
	if perr == nil && *shardDetail {
		var detail *stream.ShardDetail
		if detail, perr = engine.ShardDetail(); perr == nil {
			perr = detail.RenderShardDetail(out)
		}
	}
	// The fault summary prints even when the run died on an injected
	// fault — that is exactly when the drill operator needs it.
	for _, st := range faults.Stats() {
		fmt.Fprintf(out, "fault site %s: hits=%d fires=%d\n", st.Site, st.Hits, st.Fires)
	}
	if perr == nil && *reportPath != "" {
		totals, chars, verdict := telemetry.StreamReportParts(final)
		rep := &telemetry.RunReport{
			Tool:            "stream",
			Inputs:          logs,
			Config:          cfg.Fingerprint(),
			Totals:          totals,
			Ingest:          final.Ingest,
			Verdict:         verdict,
			Snapshots:       engine.Snapshots(),
			Characteristics: chars,
			Faults:          faults.Stats(),
			Obs:             osess.Metrics.Snapshot(),
		}
		if werr := rep.WriteFile(*reportPath); werr != nil {
			return fmt.Errorf("stream: %w", werr)
		}
	}
	// Lingering keeps the telemetry endpoints (and the run report on
	// disk) available after a successful run — how the CI smoke job
	// scrapes final state before killing the process.
	if perr == nil && *linger > 0 {
		fmt.Fprintf(os.Stderr, "lingering %v before exit (telemetry stays up)\n", *linger)
		time.Sleep(*linger)
	}
	return perr
}

// defaultMaxQuarantineRate bounds quarantine growth for the health
// rule when a quarantine sink is configured: a sustained megabyte per
// second of rejected lines means the input is mostly garbage.
const defaultMaxQuarantineRate = 1 << 20

// openQuarantine prepares the quarantine file: fresh runs truncate,
// resumed runs cut back to the checkpointed offset and append.
func openQuarantine(path string, offset int64) (*os.File, error) {
	if offset > 0 {
		if err := os.Truncate(path, offset); err != nil {
			return nil, fmt.Errorf("truncating quarantine to checkpoint offset: %w", err)
		}
		return os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	}
	return os.Create(path)
}

// snapshotLabel renders the snapshot cadence, naming the disabled case.
func snapshotLabel(d time.Duration) string {
	if d <= 0 {
		return "snapshots: final only"
	}
	return fmt.Sprintf("snapshot every %v", d)
}
