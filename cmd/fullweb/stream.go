package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"fullweb/internal/obs"
	"fullweb/internal/session"
	"fullweb/internal/stream"
	"fullweb/internal/weblog"
)

// cmdStream is the bounded-memory online pipeline: it tails one or more
// CLF logs (plain or gzip-rotated segments, or stdin) through
// internal/stream and prints periodic trace-time snapshots plus a final
// one whose totals match `fullweb analyze` on the same input exactly.
//
//	fullweb stream -log access.log
//	fullweb stream -log access.log.1.gz -log access.log.0.gz -log access.log
//	tail -F access.log | fullweb stream -log - -snapshot 1h
func cmdStream(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("stream", flag.ContinueOnError)
	var logs []string
	fs.Func("log", "CLF log file, .gz accepted, or '-' for stdin; repeat the flag for rotated segments in oldest-first order (required)", func(v string) error {
		if v == "" {
			return fmt.Errorf("empty -log value")
		}
		logs = append(logs, v)
		return nil
	})
	threshold := fs.Duration("threshold", session.DefaultThreshold, "session inactivity threshold")
	snapshotEvery := fs.Duration("snapshot", 6*time.Hour, "trace-time between snapshots (0 = final only)")
	workers := fs.Int("parallel", 0, "parse worker pool size (0 = all CPUs, 1 = sequential); snapshots are identical at any setting")
	reservoir := fs.Int("reservoir", 8192, "per-characteristic Hill reservoir capacity")
	seed := fs.Int64("seed", 1, "reservoir sampling seed")
	chunkLines := fs.Int("chunk-lines", 0, "lines per parse chunk (0 = default)")
	chunkWindow := fs.Int("chunk-window", 0, "parse chunks in flight (0 = default); bounds memory with -parallel")
	var obsCfg obs.CLIConfig
	obsCfg.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(logs) == 0 {
		return fmt.Errorf("stream: at least one -log is required")
	}
	if *workers < 0 {
		return fmt.Errorf("stream: -parallel must be >= 0, got %d", *workers)
	}
	osess, err := obsCfg.Start(obs.SystemClock(), os.Stderr)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := osess.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	ctx := osess.Context(context.Background())

	// Each segment is sniffed for gzip individually, so rotated inputs
	// may freely mix compressed and plain segments.
	readers := make([]io.Reader, 0, len(logs))
	var closers []io.Closer
	defer func() {
		for _, c := range closers {
			if cerr := c.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
	}()
	for _, path := range logs {
		var raw io.Reader
		if path == "-" {
			raw = os.Stdin
		} else {
			f, ferr := os.Open(path)
			if ferr != nil {
				return fmt.Errorf("stream: opening log: %w", ferr)
			}
			closers = append(closers, f)
			raw = f
		}
		dr, derr := weblog.MaybeDecompress(raw)
		if derr != nil {
			return fmt.Errorf("stream: %s: %w", path, derr)
		}
		readers = append(readers, dr)
	}

	cfg := stream.DefaultConfig()
	cfg.Threshold = *threshold
	cfg.SnapshotEvery = *snapshotEvery
	cfg.Workers = *workers
	cfg.ReservoirCap = *reservoir
	cfg.Seed = *seed
	cfg.Chunk = weblog.ChunkConfig{Lines: *chunkLines, Window: *chunkWindow}
	cfg.Metrics = osess.Metrics
	engine, err := stream.NewEngine(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "streaming %s (threshold %v, %s)\n\n",
		strings.Join(logs, ", "), *threshold, snapshotLabel(*snapshotEvery))
	final, err := engine.ProcessCtx(ctx, io.MultiReader(readers...), func(s *stream.Snapshot) error {
		return s.Render(out)
	})
	if err != nil {
		return err
	}
	return final.Render(out)
}

// snapshotLabel renders the snapshot cadence, naming the disabled case.
func snapshotLabel(d time.Duration) string {
	if d <= 0 {
		return "snapshots: final only"
	}
	return fmt.Sprintf("snapshot every %v", d)
}
