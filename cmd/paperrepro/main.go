// Command paperrepro regenerates every table and figure of the paper
// from synthetic traces and prints the measured values next to the
// published ones:
//
//	paperrepro -scale 0.1 -seed 1
//	paperrepro -experiments table2,fig7
//	paperrepro -progress -trace trace.jsonl -metrics metrics.json
//
// Absolute agreement is not expected — the traces are synthetic — but
// the shape must hold: H > 0.5 everywhere, raw H above stationary H,
// Poisson rejected at request level, heavy tails where the paper found
// them. See EXPERIMENTS.md for the recorded comparison.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"fullweb/internal/core"
	"fullweb/internal/lrd"
	"fullweb/internal/obs"
	"fullweb/internal/report"
	"fullweb/internal/repro"
	"fullweb/internal/weblog"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "paperrepro:", err)
		os.Exit(1)
	}
}

type experiment struct {
	name string
	desc string
	run  func(*repro.Harness, io.Writer) error
}

func experiments() []experiment {
	return []experiment{
		{"table1", "Table 1: raw data summary", runTable1},
		{"fig2", "Figure 2: requests per second, WVU", runFigure2},
		{"fig3", "Figures 3 and 5: ACF before/after stationarizing, WVU", runFigures3And5},
		{"fig4", "Figures 4 and 6: Hurst exponents, request series", runFigures4And6},
		{"fig7", "Figures 7 and 8: aggregation sweeps, WVU", runFigures7And8},
		{"sec42", "Section 4.2: Poisson battery, request level", runSection42},
		{"fig9", "Figures 9 and 10: Hurst exponents, session series", runFigures9And10},
		{"sec512", "Section 5.1.2: Poisson battery, session level", runSection512},
		{"fig11", "Figures 11 and 12: LLCD and Hill plots, WVU session length (High)", runFigures11And12},
		{"table2", "Table 2: session length in time", runTable2},
		{"table3", "Table 3: requests per session", runTable3},
		{"fig13", "Figure 13: LLCD, ClarkNet requests per session", runFigure13},
		{"table4", "Table 4: bytes per session", runTable4},
		{"sec521", "Section 5.2.1: curvature test, Pareto vs lognormal (Week rows)", runSection521},
		{"intensity", "Observation 4.1(2): per-window H vs workload intensity, WVU", runIntensity},
	}
}

func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("paperrepro", flag.ContinueOnError)
	scale := fs.Float64("scale", 0.1, "fraction of the paper's Table 1 volumes")
	seed := fs.Int64("seed", 1, "random seed")
	days := fs.Int("days", 7, "trace horizon in days")
	list := fs.String("experiments", "all", "comma-separated experiment names or 'all'")
	csvDir := fs.String("csv", "", "directory to write per-figure CSV data files (optional)")
	workers := fs.Int("parallel", 0, "worker pool size (0 = all CPUs, 1 = sequential); results are identical at any setting")
	var obsCfg obs.CLIConfig
	obsCfg.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 0 {
		return fmt.Errorf("-parallel must be >= 0, got %d", *workers)
	}
	wanted := map[string]bool{}
	if *list != "all" {
		for _, name := range strings.Split(*list, ",") {
			wanted[strings.TrimSpace(name)] = true
		}
	}
	sess, err := obsCfg.Start(obs.SystemClock(), os.Stderr)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := sess.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	h := repro.NewHarness(*scale, *seed)
	h.Days = *days
	h.Workers = *workers
	h.Tracer = sess.Tracer
	h.Metrics = sess.Metrics
	fmt.Fprintf(out, "FULL-Web paper reproduction  scale=%v seed=%d days=%d\n", *scale, *seed, *days)
	fmt.Fprintf(out, "(synthetic traces; compare shapes, not absolute values)\n\n")
	ran := 0
	for _, e := range experiments() {
		if len(wanted) > 0 && !wanted[e.name] {
			continue
		}
		fmt.Fprintf(out, "=== %s — %s ===\n", e.name, e.desc)
		if err := e.run(h, out); err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		fmt.Fprintln(out)
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matched %q", *list)
	}
	if *csvDir != "" {
		if err := writeFigureCSVs(h, *csvDir); err != nil {
			return fmt.Errorf("csv export: %w", err)
		}
		fmt.Fprintf(out, "figure data written to %s\n", *csvDir)
	}
	return nil
}

func runTable1(h *repro.Harness, out io.Writer) error {
	rows, err := h.Table1()
	if err != nil {
		return err
	}
	paper := repro.PaperTable1()
	tb := report.NewTable("Server", "Requests (paper)", "Requests (measured)", "Sessions (paper)", "Sessions (measured)", "MB (paper)", "MB (measured)")
	for i, r := range rows {
		tb.AddRow(r.Server,
			report.Count(int64(paper[i].Requests)), report.Count(int64(r.Requests)),
			report.Count(int64(paper[i].Sessions)), report.Count(int64(r.Sessions)),
			report.F2(paper[i].MB), report.F2(r.MB))
	}
	fmt.Fprint(out, tb.String())
	fmt.Fprintf(out, "note: measured values are scaled by %v by construction\n", h.Scale)
	return nil
}

func runFigure2(h *repro.Harness, out io.Writer) error {
	series, err := h.Figure2()
	if err != nil {
		return err
	}
	max := 0.0
	for _, v := range series {
		if v > max {
			max = v
		}
	}
	fmt.Fprintf(out, "requests/second over %s seconds (max %.0f):\n", report.Count(int64(len(series))), max)
	fmt.Fprintf(out, "  %s\n", report.Sparkline(series, 96))
	fmt.Fprintln(out, "expected shape: diurnal cycle with bursty peaks (paper Figure 2)")
	return nil
}

func runFigures3And5(h *repro.Harness, out io.Writer) error {
	raw, err := h.Figure3()
	if err != nil {
		return err
	}
	st, err := h.Figure5()
	if err != nil {
		return err
	}
	tb := report.NewTable("lag", "ACF raw (fig 3)", "ACF stationary (fig 5)")
	for _, lag := range []int{1, 10, 100, 500, 1000} {
		if lag < len(raw) && lag < len(st) {
			tb.AddRow(fmt.Sprint(lag), report.F(raw[lag]), report.F(st[lag]))
		}
	}
	fmt.Fprint(out, tb.String())
	fmt.Fprintln(out, "expected shape: both slowly decaying; stationary ACF below raw at long lags")
	return nil
}

func hurstTable(out io.Writer, rawM, stM repro.HurstMatrix) {
	tb := report.NewTable(append([]string{"estimator"}, func() []string {
		var cols []string
		for _, s := range repro.Servers() {
			cols = append(cols, s+" raw", s+" stat")
		}
		return cols
	}()...)...)
	for _, m := range lrd.AllMethods() {
		row := []string{m.String()}
		for _, server := range repro.Servers() {
			raw, okR := rawM[server].ByMethod(m)
			st, okS := stM[server].ByMethod(m)
			c1, c2 := "-", "-"
			if okR {
				c1 = report.F(raw.H)
			}
			if okS {
				c2 = report.F(st.H)
			}
			row = append(row, c1, c2)
		}
		tb.AddRow(row...)
	}
	fmt.Fprint(out, tb.String())
}

func runFigures4And6(h *repro.Harness, out io.Writer) error {
	rawM, err := h.Figure4()
	if err != nil {
		return err
	}
	stM, err := h.Figure6()
	if err != nil {
		return err
	}
	hurstTable(out, rawM, stM)
	fmt.Fprintln(out, "expected shape: H > 0.5 throughout; raw >= stationary mostly; H grows with workload")
	return nil
}

func runFigures9And10(h *repro.Harness, out io.Writer) error {
	rawM, err := h.Figure9()
	if err != nil {
		return err
	}
	stM, err := h.Figure10()
	if err != nil {
		return err
	}
	hurstTable(out, rawM, stM)
	fmt.Fprintln(out, "expected shape: H > 0.5; less workload-sensitive than the request series")
	return nil
}

func runFigures7And8(h *repro.Harness, out io.Writer) error {
	whittle, err := h.Figure7()
	if err != nil {
		return err
	}
	av, err := h.Figure8()
	if err != nil {
		return err
	}
	tb := report.NewTable("m", "Whittle H(m)", "95% CI", "Abry-Veitch H(m)", "95% CI")
	avByM := map[int]lrd.SweepPoint{}
	for _, p := range av {
		avByM[p.M] = p
	}
	var wLo, wHi = math.Inf(1), math.Inf(-1)
	for _, p := range whittle {
		wCI := fmt.Sprintf("[%s, %s]", report.F(p.Estimate.CI95Low), report.F(p.Estimate.CI95High))
		aCell, aCI := "-", "-"
		if a, ok := avByM[p.M]; ok {
			aCell = report.F(a.Estimate.H)
			aCI = fmt.Sprintf("[%s, %s]", report.F(a.Estimate.CI95Low), report.F(a.Estimate.CI95High))
		}
		tb.AddRow(fmt.Sprint(p.M), report.F(p.Estimate.H), wCI, aCell, aCI)
		wLo = math.Min(wLo, p.Estimate.H)
		wHi = math.Max(wHi, p.Estimate.H)
	}
	fmt.Fprint(out, tb.String())
	ranges := repro.PaperSweepRanges()
	fmt.Fprintf(out, "paper (WVU): Whittle H(m) in [%.3f, %.3f], Abry-Veitch in [%.3f, %.3f]\n",
		ranges[0].WhittleLow, ranges[0].WhittleHigh, ranges[0].AbryVeitchLow, ranges[0].AbryVeitchHigh)
	fmt.Fprintf(out, "measured:    Whittle H(m) in [%.3f, %.3f]\n", wLo, wHi)
	return nil
}

func poissonTable(out io.Writer, v repro.PoissonVerdicts) {
	tb := report.NewTable("server", "level", "events", "verdict (1h)", "verdict (10min)")
	for _, server := range repro.Servers() {
		for _, level := range []weblog.WorkloadLevel{weblog.Low, weblog.Med, weblog.High} {
			pa, ok := v[server][level]
			if !ok {
				continue
			}
			hourly := subVerdict(pa, 4)
			tenMin := subVerdict(pa, 24)
			tb.AddRow(server, level.String(), report.Count(int64(pa.Events)), hourly, tenMin)
		}
	}
	fmt.Fprint(out, tb.String())
}

func subVerdict(pa *core.PoissonAnalysis, sub int) string {
	byMode, ok := pa.Runs[sub]
	if !ok || len(byMode) == 0 {
		return "NA"
	}
	accepted := true
	for _, r := range byMode {
		if !r.PoissonAccepted() {
			accepted = false
		}
	}
	if accepted {
		return "accepted"
	}
	return "rejected"
}

func runSection42(h *repro.Harness, out io.Writer) error {
	v, err := h.Section42()
	if err != nil {
		return err
	}
	poissonTable(out, v)
	fmt.Fprintln(out, "paper finding: rejected for every server and interval")
	return nil
}

func runSection512(h *repro.Harness, out io.Writer) error {
	v, err := h.Section512()
	if err != nil {
		return err
	}
	poissonTable(out, v)
	fmt.Fprintln(out, "paper finding: accepted only for low workloads (CSEE Low/Med); NASA-Pub2 untestable")
	return nil
}

func runFigures11And12(h *repro.Harness, out io.Writer) error {
	fig11, err := h.Figure11()
	if err != nil {
		return err
	}
	fig12, err := h.Figure12()
	if err != nil {
		return err
	}
	paper := repro.PaperFigure11Values()
	tb := report.NewTable("", "paper", "measured")
	tb.AddRow("sessions in High window", report.Count(int64(paper.Sessions)), report.Count(int64(fig11.Sessions)))
	tb.AddRow("alpha_LLCD", report.F2(paper.Alpha), report.F(fig11.LLCD.Alpha))
	tb.AddRow("R^2", report.F(paper.R2), report.F(fig11.LLCD.R2))
	hill := "NS"
	if fig12.Stable {
		hill = report.F2(fig12.Alpha)
	}
	tb.AddRow("alpha_Hill", report.F2(paper.HillAlpha), hill)
	fmt.Fprint(out, tb.String())
	return nil
}

func measuredCell(row core.TailAnalysis) (hill, llcd, r2 string) {
	switch row.Status {
	case core.TailNA:
		return "NA", "NA", "NA"
	case core.TailNS:
		return "NS", report.F(row.LLCD.Alpha), report.F(row.LLCD.R2)
	default:
		return report.F2(row.Hill.Alpha), report.F(row.LLCD.Alpha), report.F(row.LLCD.R2)
	}
}

func paperCell(c repro.PaperCell) (hill, llcd, r2 string) {
	if c.IsNA() {
		return "NA", "NA", "NA"
	}
	if c.HillNS() {
		return "NS", report.F(c.LLCD), report.F(c.R2)
	}
	return report.F2(c.Hill), report.F(c.LLCD), report.F(c.R2)
}

func tailTable(out io.Writer, paper repro.PaperTable, measured *repro.MeasuredTable) {
	tb := report.NewTable("interval", "server", "Hill paper/meas", "LLCD paper/meas", "R^2 paper/meas")
	for _, interval := range repro.Intervals() {
		for _, server := range repro.Servers() {
			pc := paper.Cells[interval][server]
			mc := measured.Cells[interval][server]
			ph, pl, pr := paperCell(pc)
			mh, ml, mr := measuredCell(mc)
			tb.AddRow(interval, server, ph+" / "+mh, pl+" / "+ml, pr+" / "+mr)
		}
	}
	fmt.Fprint(out, tb.String())
}

func runTable2(h *repro.Harness, out io.Writer) error {
	m, err := h.Table2()
	if err != nil {
		return err
	}
	tailTable(out, repro.PaperTable2(), m)
	return nil
}

func runTable3(h *repro.Harness, out io.Writer) error {
	m, err := h.Table3()
	if err != nil {
		return err
	}
	tailTable(out, repro.PaperTable3(), m)
	return nil
}

func runTable4(h *repro.Harness, out io.Writer) error {
	m, err := h.Table4()
	if err != nil {
		return err
	}
	tailTable(out, repro.PaperTable4(), m)
	return nil
}

func runFigure13(h *repro.Harness, out io.Writer) error {
	fig, err := h.Figure13()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "ClarkNet sessions: %s; measured alpha_LLCD = %s (R^2 %s); paper Table 3 Week: 2.586\n",
		report.Count(int64(fig.Sessions)), report.F(fig.LLCD.Alpha), report.F(fig.LLCD.R2))
	fmt.Fprintf(out, "LLCD points: %d; tail fraction fitted: %.3f\n", len(fig.Points), fig.LLCD.TailFraction)
	return nil
}

func runSection521(h *repro.Harness, out io.Writer) error {
	tables := []struct {
		name string
		get  func() (*repro.MeasuredTable, error)
	}{
		{"session length", h.Table2},
		{"requests/session", h.Table3},
		{"bytes/session", h.Table4},
	}
	tb := report.NewTable("characteristic", "server", "p(Pareto)", "p(lognormal)", "verdict")
	for _, entry := range tables {
		m, err := entry.get()
		if err != nil {
			return err
		}
		for _, server := range repro.Servers() {
			cell := m.Cells["Week"][server]
			if !cell.CurvatureOK {
				tb.AddRow(entry.name, server, "NA", "NA", "untestable")
				continue
			}
			verdict := "neither rejected"
			if cell.Curvature.RejectPareto() && cell.Curvature.RejectLognormal() {
				verdict = "both rejected"
			} else if cell.Curvature.RejectPareto() {
				verdict = "Pareto rejected"
			} else if cell.Curvature.RejectLognormal() {
				verdict = "lognormal rejected"
			}
			tb.AddRow(entry.name, server,
				report.F(cell.Curvature.PPareto), report.F(cell.Curvature.PLognormal), verdict)
		}
	}
	fmt.Fprint(out, tb.String())
	fmt.Fprintln(out, "paper finding: neither model rejectable on its (smaller, real) samples — the")
	fmt.Fprintln(out, "ambiguity is a tail-sparsity effect: here the sparse NASA-Pub2 rows reproduce it,")
	fmt.Fprintln(out, "while the big exactly-Pareto synthetic samples correctly reject lognormal;")
	fmt.Fprintln(out, "sensitivity to the alpha estimate and MC sample is reproduced as unit tests")
	return nil
}

func runIntensity(h *repro.Harness, out io.Writer) error {
	res, err := h.Intensity()
	if err != nil {
		return err
	}
	tb := report.NewTable("server", "mean rate (req/s)", "stationary Whittle H")
	for _, s := range res.AcrossServers {
		tb.AddRow(s.Server, report.F2(s.MeanRate), report.F(s.H))
	}
	fmt.Fprint(out, tb.String())
	fmt.Fprintln(out)
	tb = report.NewTable("WVU window start (h)", "mean rate (req/s)", "Whittle H")
	for _, w := range res.WithinWVU {
		tb.AddRow(fmt.Sprint(w.Start/3600), report.F2(w.MeanRate), report.F(w.Estimate.H))
	}
	fmt.Fprint(out, tb.String())
	fmt.Fprintf(out, "within-WVU rate-H correlation: %s\n", report.F2(res.Correlation))
	fmt.Fprintln(out, "paper observation (2), section 4.1: self-similarity strengthens with workload")
	return nil
}
