package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-experiments", "bogus"}, &out); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestRunCheapExperiments(t *testing.T) {
	// table1 + fig11 + fig13 only touch generation, sessionization and
	// the tail estimators — no arrival batteries — so a small scale is
	// quick while covering the paper-vs-measured rendering path.
	var out bytes.Buffer
	err := run([]string{"-scale", "0.03", "-seed", "2", "-experiments", "table1,fig11,fig13"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"table1", "15,785,164", // paper volume shown
		"fig11", "alpha_LLCD",
		"fig13", "2.586", // paper reference value
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunTable2Comparison(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-scale", "0.03", "-seed", "2", "-experiments", "table2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	// Paper-vs-measured cells present, including the paper's NA row for
	// NASA Low.
	for _, want := range []string{"Hill paper/meas", "NA /", "Week", "WVU"} {
		if !strings.Contains(text, want) {
			t.Errorf("table2 output missing %q:\n%s", want, text)
		}
	}
}

func TestRunParallelOutputByteIdentical(t *testing.T) {
	// The -parallel flag must never change what is printed — only how
	// fast. Compare full reports at pool sizes 1 and 4 byte for byte.
	args := []string{"-scale", "0.03", "-seed", "2", "-experiments", "table1,sec42,fig11,fig13"}
	var seq, par bytes.Buffer
	if err := run(append([]string{"-parallel", "1"}, args...), &seq); err != nil {
		t.Fatal(err)
	}
	if err := run(append([]string{"-parallel", "4"}, args...), &par); err != nil {
		t.Fatal(err)
	}
	if seq.String() != par.String() {
		t.Errorf("-parallel 4 output differs from -parallel 1:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq.String(), par.String())
	}
}

func TestRunRejectsNegativeParallel(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-parallel", "-2", "-experiments", "table1"}, &out); err == nil {
		t.Error("negative -parallel should error")
	}
}

func TestExperimentNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range experiments() {
		if seen[e.name] {
			t.Errorf("duplicate experiment name %q", e.name)
		}
		seen[e.name] = true
		if e.desc == "" || e.run == nil {
			t.Errorf("experiment %q incomplete", e.name)
		}
	}
	if len(seen) < 13 {
		t.Errorf("only %d experiments registered", len(seen))
	}
}

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{"-scale", "0.03", "-seed", "2", "-days", "1", "-experiments", "table1", "-csv", dir}, &out)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"fig2_requests_per_second.csv",
		"fig3_acf_raw.csv",
		"fig5_acf_stationary.csv",
		"fig7_whittle_sweep.csv",
		"fig8_abryveitch_sweep.csv",
		"fig11_llcd_session_length.csv",
		"fig12_hill_session_length.csv",
		"fig13_llcd_requests_per_session.csv",
	}
	for _, name := range want {
		info, err := os.Stat(filepath.Join(dir, name))
		if err != nil || info.Size() == 0 {
			t.Errorf("missing or empty %s: %v", name, err)
		}
	}
}
