package main

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"fullweb/internal/heavytail"
	"fullweb/internal/lrd"
	"fullweb/internal/repro"
	"fullweb/internal/stats"
)

// writeFigureCSVs materializes the data series behind the paper's
// figures as CSV files, so they can be re-plotted with any tool. Called
// when -csv is set; one file per figure.
func writeFigureCSVs(h *repro.Harness, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("creating %s: %w", dir, err)
	}
	series, err := h.Figure2()
	if err != nil {
		return err
	}
	if err := writeSeriesCSV(filepath.Join(dir, "fig2_requests_per_second.csv"), "second", "requests", series); err != nil {
		return err
	}
	acfRaw, err := h.Figure3()
	if err != nil {
		return err
	}
	if err := writeSeriesCSV(filepath.Join(dir, "fig3_acf_raw.csv"), "lag", "acf", acfRaw); err != nil {
		return err
	}
	acfStat, err := h.Figure5()
	if err != nil {
		return err
	}
	if err := writeSeriesCSV(filepath.Join(dir, "fig5_acf_stationary.csv"), "lag", "acf", acfStat); err != nil {
		return err
	}
	whittle, err := h.Figure7()
	if err != nil {
		return err
	}
	if err := writeSweepCSV(filepath.Join(dir, "fig7_whittle_sweep.csv"), whittle); err != nil {
		return err
	}
	av, err := h.Figure8()
	if err != nil {
		return err
	}
	if err := writeSweepCSV(filepath.Join(dir, "fig8_abryveitch_sweep.csv"), av); err != nil {
		return err
	}
	fig11, err := h.Figure11()
	if err != nil {
		return err
	}
	if err := writeLLCDCSV(filepath.Join(dir, "fig11_llcd_session_length.csv"), fig11.Points); err != nil {
		return err
	}
	fig12, err := h.Figure12()
	if err != nil {
		return err
	}
	if err := writeHillCSV(filepath.Join(dir, "fig12_hill_session_length.csv"), fig12.Plot); err != nil {
		return err
	}
	fig13, err := h.Figure13()
	if err != nil {
		return err
	}
	return writeLLCDCSV(filepath.Join(dir, "fig13_llcd_requests_per_session.csv"), fig13.Points)
}

func writeCSV(path string, header []string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating %s: %w", path, err)
	}
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %w", path, err)
	}
	if err := w.WriteAll(rows); err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %w", path, err)
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return fmt.Errorf("flushing %s: %w", path, err)
	}
	return f.Close()
}

func writeSeriesCSV(path, xName, yName string, series []float64) error {
	rows := make([][]string, len(series))
	for i, v := range series {
		rows[i] = []string{strconv.Itoa(i), strconv.FormatFloat(v, 'g', -1, 64)}
	}
	return writeCSV(path, []string{xName, yName}, rows)
}

func writeSweepCSV(path string, points []lrd.SweepPoint) error {
	rows := make([][]string, len(points))
	for i, p := range points {
		rows[i] = []string{
			strconv.Itoa(p.M),
			strconv.FormatFloat(p.Estimate.H, 'g', -1, 64),
			strconv.FormatFloat(p.Estimate.CI95Low, 'g', -1, 64),
			strconv.FormatFloat(p.Estimate.CI95High, 'g', -1, 64),
			strconv.Itoa(p.Blocks),
		}
	}
	return writeCSV(path, []string{"m", "h", "ci95_low", "ci95_high", "blocks"}, rows)
}

func writeLLCDCSV(path string, points []stats.LLCDPoint) error {
	rows := make([][]string, len(points))
	for i, p := range points {
		rows[i] = []string{
			strconv.FormatFloat(p.LogX, 'g', -1, 64),
			strconv.FormatFloat(p.LogCCDF, 'g', -1, 64),
		}
	}
	return writeCSV(path, []string{"log10_x", "log10_ccdf"}, rows)
}

func writeHillCSV(path string, plot []heavytail.HillPoint) error {
	rows := make([][]string, len(plot))
	for i, p := range plot {
		rows[i] = []string{strconv.Itoa(p.K), strconv.FormatFloat(p.Alpha, 'g', -1, 64)}
	}
	return writeCSV(path, []string{"k", "alpha"}, rows)
}
