// Command fullweb-lint runs the repo's determinism and concurrency
// analyzers (internal/lint) over the whole module — the multichecker
// behind `make lint` and the tier-1 gate.
//
// Usage:
//
//	fullweb-lint [-rules maporder,rawgo] [-list] [./...]
//
// The tool always analyzes the full module containing the working
// directory (the only pattern accepted is ./...); -rules restricts
// the run to a comma-separated subset of analyzers. Non-test files
// only: test-order effects are covered by `go test -shuffle=on`.
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
// Suppressions use `//lint:allow <rule> <reason>` on or directly
// above the offending line; see DESIGN.md "Machine-checked
// invariants".
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"fullweb/internal/lint"
	"fullweb/internal/lint/analysis"
	"fullweb/internal/lint/load"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fullweb-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	rules := fs.String("rules", "", "comma-separated subset of analyzers to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, firstLine(a.Doc))
		}
		return 0
	}
	if *rules != "" {
		var err error
		analyzers, err = selectRules(analyzers, *rules)
		if err != nil {
			fmt.Fprintln(stderr, "fullweb-lint:", err)
			return 2
		}
	}
	for _, pat := range fs.Args() {
		if pat != "./..." {
			fmt.Fprintf(stderr, "fullweb-lint: unsupported pattern %q (the module is always analyzed whole; use ./...)\n", pat)
			return 2
		}
	}

	pkgs, err := load.Module(".")
	if err != nil {
		fmt.Fprintln(stderr, "fullweb-lint:", err)
		return 2
	}
	status := 0
	for _, pkg := range pkgs {
		if len(pkg.Errors) > 0 {
			for _, e := range pkg.Errors {
				fmt.Fprintf(stderr, "fullweb-lint: %s: %v\n", pkg.PkgPath, e)
			}
			return 2
		}
		findings, err := lint.Run(pkg, analyzers...)
		if err != nil {
			fmt.Fprintln(stderr, "fullweb-lint:", err)
			return 2
		}
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
			status = 1
		}
	}
	return status
}

// selectRules filters the suite down to the named analyzers.
func selectRules(all []*analysis.Analyzer, rules string) ([]*analysis.Analyzer, error) {
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var picked []*analysis.Analyzer
	for _, name := range strings.Split(rules, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (run -list for the suite)", name)
		}
		picked = append(picked, a)
	}
	return picked, nil
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
