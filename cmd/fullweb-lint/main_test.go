package main

import (
	"strings"
	"testing"

	"fullweb/internal/lint"
)

func TestListPrintsTheSuite(t *testing.T) {
	var out, errb strings.Builder
	if status := run([]string{"-list"}, &out, &errb); status != 0 {
		t.Fatalf("-list: status %d, stderr %q", status, errb.String())
	}
	for _, name := range []string{"ctxflow", "globalrand", "maporder", "rawgo", "walltime"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestSelectRules(t *testing.T) {
	picked, err := selectRules(lint.Analyzers(), "maporder, rawgo")
	if err != nil {
		t.Fatal(err)
	}
	if len(picked) != 2 || picked[0].Name != "maporder" || picked[1].Name != "rawgo" {
		t.Errorf("unexpected selection: %v", picked)
	}
	if _, err := selectRules(lint.Analyzers(), "nosuchrule"); err == nil {
		t.Error("unknown rule not rejected")
	}
}

func TestUnsupportedPatternRejected(t *testing.T) {
	var out, errb strings.Builder
	if status := run([]string{"./internal/session"}, &out, &errb); status != 2 {
		t.Fatalf("unsupported pattern: status %d, want 2", status)
	}
	if !strings.Contains(errb.String(), "unsupported pattern") {
		t.Errorf("missing usage error, got %q", errb.String())
	}
}
