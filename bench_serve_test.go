// Telemetry-service benchmark pair (PR 8 evidence, BENCH_pr8.json):
// the identical CLF bytes through the streaming engine with the
// telemetry surface off and with it fully on — registry instruments,
// copy-on-publish holder, health rules and a live HTTP scraper polling
// /metrics and /snapshot throughout the run. The gate is that serving
// stays off the fold's hot path: publication happens at chunk
// granularity and the scraper only ever reads published values, so
// records/s must hold and -benchmem must not show per-record growth.
//
//	make bench-serve
package fullweb_test

import (
	"bytes"
	"context"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"fullweb/internal/obs"
	"fullweb/internal/stream"
	"fullweb/internal/telemetry"
)

// BenchmarkObsServeOff is the baseline: no registry, no holder, no
// listener — the exact configuration bench-stream measures.
func BenchmarkObsServeOff(b *testing.B) {
	text := benchStreamTrace(b)
	cfg := stream.DefaultConfig()
	cfg.SnapshotEvery = 0
	var records int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := stream.NewEngine(cfg)
		if err != nil {
			b.Fatal(err)
		}
		final, err := eng.ProcessCtx(context.Background(), bytes.NewReader(text), nil)
		if err != nil {
			b.Fatal(err)
		}
		records = final.Records
	}
	b.StopTimer()
	reportRecordsPerSec(b, records)
}

// BenchmarkObsServeOn runs the full telemetry stack under scrape load:
// live registry instruments, runtime/snapshot publication into the
// holder after every folded chunk, and one scraper goroutine polling
// /metrics and /snapshot over real HTTP for the whole measurement.
func BenchmarkObsServeOn(b *testing.B) {
	text := benchStreamTrace(b)
	reg := obs.NewRegistry()
	holder := telemetry.NewHolder(obs.SystemClock())
	health := telemetry.NewHealth(telemetry.HealthConfig{Mode: stream.ModeBudgeted}, holder, reg, obs.SystemClock())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := telemetry.NewServer(reg, holder, health)
	srv.Serve(ln)
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var scrapes int64
	wg.Add(1)
	//lint:allow rawgo benchmark scraper thread; joined via WaitGroup before the benchmark returns
	go func() {
		defer wg.Done()
		client := &http.Client{Timeout: time.Second}
		base := "http://" + ln.Addr().String()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, path := range []string{"/metrics", "/snapshot", "/healthz"} {
				resp, err := client.Get(base + path)
				if err != nil {
					continue
				}
				_, _ = bytes.NewBuffer(nil).ReadFrom(resp.Body)
				resp.Body.Close()
			}
			scrapes++
		}
	}()

	cfg := stream.DefaultConfig()
	cfg.SnapshotEvery = 0
	cfg.Metrics = reg
	cfg.Telemetry = holder
	var records int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := stream.NewEngine(cfg)
		if err != nil {
			b.Fatal(err)
		}
		final, err := eng.ProcessCtx(context.Background(), bytes.NewReader(text), nil)
		if err != nil {
			b.Fatal(err)
		}
		records = final.Records
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
	if scrapes == 0 {
		b.Log("scraper completed no rounds (very fast run); records/s still valid")
	}
	reportRecordsPerSec(b, records)
}
