// WAL overhead benchmark pair (PR 10 evidence, BENCH_pr10.json): the
// same CLF bytes through the serve HTTP /ingest path with the durable
// intake journal off and on, at one shard. Both report records/sec;
// the acceptance bar is WAL-on within 10% of WAL-off — journaling a
// delivery before acknowledging it (sha256 framing, segment writes,
// and the default rely-on-OS-writeback durability, which keeps forced
// fsync off the intake path) must not become the intake bottleneck.
//
//	make bench-wal
package fullweb_test

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"fullweb/internal/serve"
	"fullweb/internal/weblog"
	"fullweb/internal/workload"
)

// benchWALServeRun is benchServeRun with an optional journal: it
// waits for /readyz (journal open included) before feeding, so the
// measurement starts at an acknowledging server either way.
func benchWALServeRun(b *testing.B, wal *serve.WALConfig, feed func(base string)) int64 {
	b.Helper()
	s, err := serve.New(serve.Config{
		Sources: []string{"bench"},
		Engine:  benchIntakeConfig(1),
		WAL:     wal,
	})
	if err != nil {
		b.Fatal(err)
	}
	hln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	s.StartHTTP(hln)
	defer s.Close()
	base := "http://" + hln.Addr().String()
	type result struct {
		records int64
		err     error
	}
	ch := make(chan result, 1)
	go func() {
		final, rerr := s.Run(context.Background(), nil)
		if rerr != nil {
			ch <- result{err: rerr}
			return
		}
		ch <- result{records: final.Records}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			b.Fatal("server never became ready")
		}
		time.Sleep(time.Millisecond)
	}
	feed(base)
	res := <-ch
	if res.err != nil {
		b.Fatal(res.err)
	}
	return res.records
}

// benchWALTrace is a longer workload than benchStreamTrace: the WAL
// pair measures steady-state intake overhead, and a multi-second
// trace keeps the journal's per-run fixed costs (segment create +
// directory fsync, completion fsync) from dominating a short run.
func benchWALTrace(b *testing.B) []byte {
	b.Helper()
	trace, err := workload.Generate(workload.NASAPub2(), workload.Config{Scale: 0.5, Seed: benchSeed, Days: 14})
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := weblog.WriteAll(&buf, trace.Records); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// BenchmarkIntakeWAL: the HTTP intake path with the journal off and
// on. Deliveries are 256 KiB chunks stamped with delivery IDs (the
// journal's dedup key), matching how a retrying client would feed.
func BenchmarkIntakeWAL(b *testing.B) {
	text := benchWALTrace(b)
	const chunk = 256 << 10
	feed := func(base string) {
		client := &http.Client{}
		n := 0
		for off := 0; off < len(text); off += chunk {
			end := off + chunk
			if end > len(text) {
				end = len(text)
			}
			url := fmt.Sprintf("%s/ingest?source=bench&delivery=d%d", base, n)
			n++
			resp, err := client.Post(url, "text/plain", bytes.NewReader(text[off:end]))
			if err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("ingest chunk: status %d", resp.StatusCode)
			}
		}
		resp, err := client.Post(base+"/ingest?source=bench&complete=1", "text/plain", nil)
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}
	for _, on := range []bool{false, true} {
		name := "wal=off"
		if on {
			name = "wal=on"
		}
		b.Run(name, func(b *testing.B) {
			var records int64
			b.SetBytes(int64(len(text)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wal *serve.WALConfig
				var dir string
				if on {
					b.StopTimer()
					var err error
					dir, err = os.MkdirTemp(b.TempDir(), "wal")
					if err != nil {
						b.Fatal(err)
					}
					wal = &serve.WALConfig{Dir: filepath.Join(dir, "journal")}
					b.StartTimer()
				}
				records = benchWALServeRun(b, wal, feed)
				if on {
					// Unlink each iteration's journal untimed: dropping
					// the dirty pages keeps earlier iterations' kernel
					// writeback from stealing CPU out of later ones.
					b.StopTimer()
					os.RemoveAll(dir)
					b.StartTimer()
				}
			}
			reportRecordsPerSec(b, records)
		})
	}
}
